// Figure 10(e) — NAS-MG: the hand-written NPB-style reference against
// the PolyMG variants (the paper reports polymg-opt+ beating the NAS
// reference by 32% on class C).
//
// Flags: --paper, --reps N, --class B|C.
#include "gbench.hpp"

int main(int argc, char** argv) {
  using namespace polymg::bench;
  const polymg::Options opts = parse_bench_options(argc, argv);
  TraceFromOptions trace(opts);
  MetricsFromOptions metrics(opts);
  const bool paper = paper_sizes_requested(opts);
  const int reps = static_cast<int>(opts.get_int("reps", 3));
  const std::string only_class = opts.get("class", "");
  benchmark::Initialize(&argc, argv);

  for (const NasClass& nc : nas_classes(paper)) {
    if (!only_class.empty() && nc.name != only_class) continue;
    polymg::solvers::NasMgConfig cfg;
    cfg.n = nc.n;
    cfg.levels = nc.levels;
    const std::string row = "NAS-MG/" + nc.name;
    for (Series s :
         {Series::HandOpt, Series::Naive, Series::Opt, Series::OptPlus}) {
      SolveRunner r = make_nas_runner(s, cfg, nc.iters);
      const std::string label = r.label;  // read before the move
      register_point(row, label, std::move(r), reps);
    }
  }

  ResultTable table;
  TableReporter reporter(&table);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  table.print("Figure 10(e): NAS-MG", "polymg-naive");
  std::printf("\npolymg-opt+ over nas-reference: %.2fx (paper class C: 1.32x)\n",
              table.geomean_speedup("polymg-opt+", "nas-reference"));
  return 0;
}
