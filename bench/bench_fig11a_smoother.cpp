// Figure 11a — smoother-only comparison on the 3-d class-C grid:
// overlapped tiling with local buffers (polymg-opt+) versus
// split/diamond time tiling (polymg-dtile-opt+, standing in for Pluto)
// at 4 and 10 Jacobi steps. The paper finds overlapped slightly ahead at
// 4 steps and diamond ahead at 10 (3-d); in 2-d overlapped always wins —
// pass --ndim 2 to check that too.
//
// Also includes the wavefront (time-skewed, line-buffered) schedule of
// Williams et al. as an ablation: no redundant computation, no
// concurrent start (§5's comparison point).
//
// Flags: --paper, --reps N, --ndim 2|3.
#include "polymg/runtime/wavefront.hpp"

#include "gbench.hpp"

namespace polymg::bench {
namespace {

SolveRunner smoother_runner(Variant var, const CycleConfig& cfg, int steps,
                            int sweeps) {
  SolveRunner r;
  r.label = opt::to_string(var);
  auto p = std::make_shared<solvers::PoissonProblem>(
      solvers::PoissonProblem::random_rhs(cfg.ndim, cfg.n, 7));
  auto ex = std::make_shared<runtime::Executor>(
      opt::compile(solvers::build_smoother_only(cfg, steps),
                   CompileOptions::for_variant(var, cfg.ndim)));
  r.run = [p, ex, sweeps] {
    for (int i = 0; i < sweeps; ++i) {
      const std::vector<grid::View> ext = {p->v_view(), p->f_view()};
      ex->run(ext);
      grid::copy_region(p->v_view(), ex->output_view(0), p->domain());
    }
  };
  return r;
}

SolveRunner wavefront_runner(const CycleConfig& cfg, int steps, int sweeps) {
  SolveRunner r;
  r.label = "wavefront";
  auto p = std::make_shared<solvers::PoissonProblem>(
      solvers::PoissonProblem::random_rhs(cfg.ndim, cfg.n, 7));
  auto out = std::make_shared<grid::Buffer>(grid::make_grid(p->domain()));
  const double w = cfg.smoother_weight(cfg.levels - 1);
  const double inv_h2 =
      1.0 / (cfg.level_h(cfg.levels - 1) * cfg.level_h(cfg.levels - 1));
  r.run = [p, out, w, inv_h2, steps, sweeps, cfg] {
    for (int i = 0; i < sweeps; ++i) {
      runtime::wavefront_jacobi(
          p->v_view(), grid::View::over(out->data(), p->domain()),
          p->f_view(), cfg.n, cfg.ndim, w, inv_h2, steps);
      grid::copy_region(p->v_view(),
                        grid::View::over(out->data(), p->domain()),
                        p->interior());
    }
  };
  return r;
}

}  // namespace
}  // namespace polymg::bench

int main(int argc, char** argv) {
  using namespace polymg::bench;
  const polymg::Options opts = parse_bench_options(argc, argv);
  TraceFromOptions trace(opts);
  MetricsFromOptions metrics(opts);
  const bool paper = paper_sizes_requested(opts);
  const int reps = static_cast<int>(opts.get_int("reps", 3));
  const int ndim = static_cast<int>(opts.get_int("ndim", 3));
  benchmark::Initialize(&argc, argv);

  const SizeClass sc = size_classes(paper).back();  // class C
  CycleConfig cfg;
  cfg.ndim = ndim;
  cfg.n = ndim == 2 ? sc.n2d : sc.n3d;
  cfg.levels = 1;

  for (int steps : {4, 10}) {
    const std::string row = std::to_string(ndim) + "D-C smoother x" +
                            std::to_string(steps);
    for (Variant v :
         {Variant::Naive, Variant::OptPlus, Variant::DtileOptPlus}) {
      register_point(row, polymg::opt::to_string(v),
                     smoother_runner(v, cfg, steps, /*sweeps=*/2), reps);
    }
    register_point(row, "wavefront", wavefront_runner(cfg, steps, 2), reps);
  }

  ResultTable table;
  TableReporter reporter(&table);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  table.print("Figure 11a: Jacobi smoother, overlapped vs diamond tiling",
              "polymg-naive");
  std::printf(
      "\nExpected shape (paper): overlapped (opt+) ahead at 4 steps;\n"
      "diamond (dtile-opt+) catches up / wins at 10 steps in 3-d.\n");
  return 0;
}
