// Resilience cost model (DESIGN.md §9): what does surviving failures
// cost when nothing actually fails, and what does recovery cost when
// something does?
//
//   1. Checkpoint overhead vs cadence — guarded_solve on W-2D at
//      cadence 0 (off, the baseline) through 8; the acceptance bar is
//      <5% overhead at the resilience-on default (cadence 1).
//   2. Rank-death recovery latency — the time DistMgSolver::recover()
//      takes to rebuild a dead rank's slab from its ring replica,
//      shrink the decomposition to the survivors and rescatter.
//   3. SDC detection rate — repeated solves each carrying one injected
//      finite bit-flip (kernel.bitflip at a pseudo-random cycle); the
//      residual-jump guard must catch and roll back essentially all of
//      them, and every trial must still converge.
//
// Emits a single JSON object (not the usual speedup-table array): the
// three panels above are derived metrics, not per-series timings.
//
// Flags: --paper, --reps N, --ranks R, --trials T, --json FILE.
#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "gbench.hpp"
#include "polymg/dist/dist_mg.hpp"
#include "polymg/runtime/pool.hpp"
#include "polymg/solvers/checkpoint.hpp"
#include "polymg/solvers/guarded.hpp"

namespace polymg::bench {
namespace {

using solvers::GuardPolicy;
using solvers::PoissonProblem;
using solvers::SolveReport;

/// One measured cadence point of panel 1.
struct CadencePoint {
  int cadence = 0;
  Stats stats;     // seconds per solve, end to end
  long writes = 0; // checkpoint writes per solve
  int cycles = 0;  // must match the cadence-0 run
};

/// Fresh-start guarded solve at one checkpoint cadence. The problem and
/// its pristine initial guess are shared across repetitions; each run
/// rewinds v and re-solves, so every repetition does identical work. A
/// persistent checkpoint pool (the long-running-service configuration)
/// keeps slot buffers warm across runs — the steady-state cost, not the
/// first-call page faults, is what the cadence sweep measures.
SolveRunner cadence_runner(const CycleConfig& cfg, double tol, int cadence,
                           std::shared_ptr<polymg::runtime::MemoryPool> pool,
                           CadencePoint* out) {
  SolveRunner r;
  auto p = std::make_shared<PoissonProblem>(
      PoissonProblem::manufactured(cfg.ndim, cfg.n));
  auto v0 = std::make_shared<grid::Buffer>(p->v.clone());
  GuardPolicy policy;
  policy.checkpoint_cadence = cadence;
  policy.checkpoint_pool = pool.get();
  r.run = [cfg, tol, policy, p, v0, pool, out] {
    grid::copy_region(p->v_view(), grid::View::over(v0->data(), p->domain()),
                      p->domain());
    const SolveReport rep = solvers::guarded_solve(cfg, *p, tol, policy);
    out->writes = rep.checkpoint_writes;
    out->cycles = rep.total_cycles;
  };
  return r;
}

}  // namespace
}  // namespace polymg::bench

int main(int argc, char** argv) {
  using namespace polymg::bench;
  const polymg::Options opts = parse_bench_options(argc, argv);
  TraceFromOptions trace(opts);
  MetricsFromOptions metrics(opts);
  const bool paper = paper_sizes_requested(opts);
  const int reps = static_cast<int>(opts.get_int("reps", 3));
  const int ranks = static_cast<int>(opts.get_int("ranks", 4));
  const int trials = static_cast<int>(opts.get_int("trials", 20));

  // ---- Panel 1: checkpoint overhead vs cadence (W-cycle 2D). --------
  // A deep hierarchy (coarsest interior 7) with a real coarse solve so
  // the W-cycle converges to the target — then every cadence runs the
  // same cycle count and the timing difference is pure checkpoint cost.
  const SizeClass sc = size_classes(paper).front();  // class B
  CycleConfig wcfg;
  wcfg.ndim = 2;
  wcfg.n = sc.n2d;
  wcfg.levels = 6;
  wcfg.kind = polymg::solvers::CycleKind::W;
  wcfg.n1 = 10;
  wcfg.n2 = 20;
  wcfg.n3 = 10;
  const double tol = 1e-10;

  const std::vector<int> cadences = {0, 1, 2, 4, 8};
  auto ckpt_pool = std::make_shared<polymg::runtime::MemoryPool>();
  std::vector<std::unique_ptr<CadencePoint>> points;
  std::vector<SolveRunner> runners;
  for (int cadence : cadences) {
    points.push_back(std::make_unique<CadencePoint>());
    points.back()->cadence = cadence;
    runners.push_back(
        cadence_runner(wcfg, tol, cadence, ckpt_pool, points.back().get()));
    runners.back().run();  // warm: compile the plan, fault in pool pages
  }
  // Round-robin the repetitions across cadences so machine drift (which
  // moves more per block than one checkpoint costs) spreads evenly over
  // every series instead of folding into one.
  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < runners.size(); ++i) {
      polymg::Timer t;
      runners[i].run();
      points[i]->stats.observe(t.elapsed());
    }
  }
  // A single checkpoint costs ~0.3 ms against a ~75 ms solve — under
  // this box's run-to-run jitter, so a whole-solve subtraction measures
  // noise, not checkpoints. Measure the capture path directly instead
  // (back-to-back writes amortize the timer and pin the cost to well
  // under a percent) and derive each cadence's overhead from it; the
  // end-to-end "ms" column stays as the sanity check that nothing else
  // about the solve changed.
  PoissonProblem wp = PoissonProblem::manufactured(wcfg.ndim, wcfg.n);
  const auto v_doubles = static_cast<polymg::poly::index_t>(wp.v.size());
  polymg::solvers::Checkpoint probe(*ckpt_pool);
  double write_s;
  {
    const auto write_once = [&](int cycle) {
      probe.begin(cycle, 0);
      probe.save(0, wp.v.data(), v_doubles);
      for (std::size_t m = 0; m < 6; ++m) probe.set_meta(m, 1.0);
      probe.commit();
    };
    const int warm = 8, timed_writes = 100;
    for (int i = 0; i < warm; ++i) write_once(i);
    polymg::Timer t;
    for (int i = 0; i < timed_writes; ++i) write_once(i);
    write_s = t.elapsed() / timed_writes;
  }
  const auto overhead_pct = [&](const CadencePoint& pt) {
    return 100.0 * static_cast<double>(pt.writes) * write_s /
           (points.front()->stats.min);
  };

  std::printf("checkpoint overhead, W-2D-10-20-10 n=%lld (%d cycles to "
              "%.0e; %.3f ms per %lld-double write):\n",
              static_cast<long long>(wcfg.n), points.front()->cycles, tol,
              write_s * 1e3, static_cast<long long>(v_doubles));
  std::printf("%10s %10s %12s %10s\n", "cadence", "ms", "overhead %", "writes");
  for (const auto& pt : points) {
    std::printf("%10d %10.2f %12.2f %10ld\n", pt->cadence,
                pt->stats.min * 1e3, overhead_pct(*pt), pt->writes);
  }

  // ---- Panel 2: rank-death recovery latency. ------------------------
  // recover() mutates the solver (the decomposition shrinks), so each
  // repetition drives a fresh solver to the same pre-death state: one
  // cycle run, checkpoint committed, then rank 1 is declared dead.
  CycleConfig dcfg;
  dcfg.ndim = 2;
  dcfg.n = sc.n2d;
  dcfg.levels = 3;
  polymg::Stats recover_s;
  for (int i = 0; i < reps; ++i) {
    PoissonProblem p = PoissonProblem::random_rhs(dcfg.ndim, dcfg.n, 7);
    polymg::dist::DistMgSolver solver(dcfg, ranks);
    solver.scatter(p.v_view(), p.f_view());
    solver.cycle();
    solver.write_checkpoint(1);
    polymg::Timer t;
    solver.recover(/*dead_rank=*/1);
    recover_s.observe(t.elapsed());
  }
  std::printf("\nrank-death recovery, %d -> %d ranks (n=%lld):\n", ranks,
              ranks - 1, static_cast<long long>(dcfg.n));
  std::printf("  latency %.2f ms (mean %.2f ms over %d reps)\n",
              recover_s.min * 1e3, recover_s.mean * 1e3, reps);

  // ---- Panel 3: SDC detection rate. ---------------------------------
  // Each trial arms one finite bit-flip at a trial-specific seed so the
  // corruption lands at a different cycle/kernel every time. Trials
  // where the flip never fired (the solve converged first) don't count
  // against the detector.
  CycleConfig scfg;
  scfg.ndim = 2;
  scfg.n = 255;
  scfg.levels = 6;
  scfg.n2 = 20;
  GuardPolicy sdc_policy;
  sdc_policy.checkpoint_cadence = 1;
  sdc_policy.max_rollbacks = 3;
  int injected = 0, detected = 0, sdc_converged = 0;
  auto& fi = polymg::fault::FaultInjector::instance();
  for (int t = 0; t < trials; ++t) {
    PoissonProblem p = PoissonProblem::manufactured(scfg.ndim, scfg.n);
    fi.reset();
    fi.arm(polymg::fault::kKernelBitflip, 1, 0.01,
           0x5dc0 + static_cast<std::uint64_t>(t));
    const SolveReport rep =
        polymg::solvers::guarded_solve(scfg, p, 1e-8, sdc_policy);
    if (fi.fired(polymg::fault::kKernelBitflip) == 0) continue;
    ++injected;
    if (rep.sdc_detected > 0) ++detected;
    if (rep.converged) ++sdc_converged;
  }
  fi.reset();
  const double rate = injected > 0
                          ? static_cast<double>(detected) / injected
                          : 0.0;
  std::printf("\nSDC detection, one finite bit-flip per solve (n=%lld):\n",
              static_cast<long long>(scfg.n));
  std::printf("  %d/%d trials injected, %d detected+rolled back (%.0f%%), "
              "%d converged\n",
              injected, trials, detected, rate * 100.0, sdc_converged);

  // ---- JSON ---------------------------------------------------------
  if (const std::string json = opts.get("json", ""); !json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"resilience\",\n");
    std::fprintf(f, "  \"checkpoint_write_ms\": %.6f,\n", write_s * 1e3);
    std::fprintf(f, "  \"checkpoint_overhead\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& pt = *points[i];
      std::fprintf(f,
                   "    {\"cadence\": %d, \"ms\": %.6f, \"mean_ms\": %.6f, "
                   "\"overhead_pct\": %.4f, "
                   "\"writes\": %ld, \"cycles\": %d, \"reps\": %d}%s\n",
                   pt.cadence, pt.stats.min * 1e3, pt.stats.mean * 1e3,
                   overhead_pct(pt), pt.writes, pt.cycles, pt.stats.n,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"recovery\": {\"ranks\": %d, \"survivors\": %d, "
                 "\"latency_ms\": %.6f, \"mean_ms\": %.6f, \"reps\": %d},\n",
                 ranks, ranks - 1, recover_s.min * 1e3, recover_s.mean * 1e3,
                 reps);
    std::fprintf(f,
                 "  \"sdc\": {\"trials\": %d, \"injected\": %d, "
                 "\"detected\": %d, \"detection_rate\": %.4f, "
                 "\"converged\": %d}\n",
                 trials, injected, detected, rate, sdc_converged);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json.c_str());
  }
  return 0;
}
