// Thread-scaling panels of Figs. 9/10: polymg-naive vs polymg-opt+
// across power-of-two thread counts up to the machine's cores. On the
// paper's 24-core Haswell this reproduces the right-hand panels (e.g.
// W-2D-10-0-0/C: naive 5.38× vs opt+ 33.3× total at 24 threads); on a
// single-core host it degenerates to one row and documents that fact.
//
// Flags: --paper, --reps N, --max-threads T.
#include "polymg/common/parallel.hpp"

#include "gbench.hpp"

int main(int argc, char** argv) {
  using namespace polymg::bench;
  const polymg::Options opts = parse_bench_options(argc, argv);
  TraceFromOptions trace(opts);
  MetricsFromOptions metrics(opts);
  const bool paper = paper_sizes_requested(opts);
  const int reps = static_cast<int>(opts.get_int("reps", 2));
  const int max_threads = static_cast<int>(
      opts.get_int("max-threads", polymg::max_threads()));
  benchmark::Initialize(&argc, argv);

  const SizeClass sc = size_classes(paper).back();  // class C
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = sc.n2d;
  cfg.levels = 4;
  cfg.kind = polymg::solvers::CycleKind::W;  // the rows are W-2D-10-0-0
  cfg.n1 = 10;
  cfg.n2 = 0;
  cfg.n3 = 0;

  // Measure outside google-benchmark here: the thread count is global
  // runtime state that must wrap each point deterministically.
  ResultTable table;
  for (int t = 1; t <= max_threads; t *= 2) {
    polymg::set_num_threads(t);
    const std::string row = "W-2D-10-0-0/C @" + std::to_string(t) + "t";
    for (Series s : {Series::Naive, Series::OptPlus}) {
      SolveRunner r = make_runner(s, cfg, sc.iters2d);
      r.run();  // warm (first-touch pages)
      table.record(row, to_string(s), time_runner(r, reps));
    }
  }
  polymg::set_num_threads(max_threads);

  table.print("Scaling: threads sweep (speedups are vs naive at the same "
              "thread count)",
              "polymg-naive");
  const double naive_1t = table.get("W-2D-10-0-0/C @1t", "polymg-naive");
  std::printf("\ntotal speedup over 1-thread naive:\n");
  for (int t = 1; t <= max_threads; t *= 2) {
    const std::string row = "W-2D-10-0-0/C @" + std::to_string(t) + "t";
    std::printf("  %2d threads: naive %5.2fx, opt+ %5.2fx\n", t,
                naive_1t / table.get(row, "polymg-naive"),
                naive_1t / table.get(row, "polymg-opt+"));
  }
  if (max_threads == 1) {
    std::printf(
        "\n(single-core host: the multi-thread rows of the paper's panels\n"
        "cannot be measured here; run on a multicore machine to extend.)\n");
  }
  return 0;
}
