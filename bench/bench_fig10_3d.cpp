// Figure 10(a-d) — 3-d benchmarks: the same series as Fig. 9 on
// {V, W} × {4-4-4, 10-0-0} 3-d Poisson problems.
//
// Flags: --paper, --reps N, --class B|C,
//        --precision double|mixed|float (polymg DSL series; the
//        polymg-mixed row is mixed regardless).
#include "gbench.hpp"

namespace polymg::bench {
namespace {

void register_all(const Options& opts) {
  const bool paper = paper_sizes_requested(opts);
  const int reps = static_cast<int>(opts.get_int("reps", 2));
  const std::string only_class = opts.get("class", "");
  const opt::PrecisionPolicy prec = precision_from_options(opts);

  for (const SizeClass& sc : size_classes(paper)) {
    if (!only_class.empty() && sc.name != only_class) continue;
    for (CycleKind kind : {CycleKind::V, CycleKind::W}) {
      for (auto [n1, n2, n3] : {std::tuple{4, 4, 4}, std::tuple{10, 0, 0}}) {
        CycleConfig cfg;
        cfg.ndim = 3;
        cfg.n = sc.n3d;
        cfg.levels = 4;
        cfg.kind = kind;
        cfg.n1 = n1;
        cfg.n2 = n2;
        cfg.n3 = n3;
        const std::string row =
            std::string(kind == CycleKind::V ? "V" : "W") + "-3D-" +
            std::to_string(n1) + "-" + std::to_string(n2) + "-" +
            std::to_string(n3) + "/" + sc.name;
        for (Series s : all_series()) {
          register_point(row, to_string(s),
                         make_runner(s, cfg, sc.iters3d, 42, prec), reps);
        }
      }
    }
  }
}

}  // namespace
}  // namespace polymg::bench

int main(int argc, char** argv) {
  using namespace polymg::bench;
  const polymg::Options opts = parse_bench_options(argc, argv);
  TraceFromOptions trace(opts);
  MetricsFromOptions metrics(opts);
  benchmark::Initialize(&argc, argv);
  register_all(opts);
  ResultTable table;
  TableReporter reporter(&table);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  table.print("Figure 10(a-d): 3-d multigrid benchmarks", "polymg-naive");
  std::printf("\n§4.2 summary (geometric means across 3-d rows):\n");
  std::printf("  polymg-opt+ over polymg-naive : %.2fx (paper 3-d: 2.18x)\n",
              table.geomean_speedup("polymg-opt+", "polymg-naive"));
  std::printf("  polymg-opt+ over polymg-opt   : %.2fx\n",
              table.geomean_speedup("polymg-opt+", "polymg-opt"));
  std::printf(
      "  polymg-dtile-opt+ over polymg-opt+ : %.2fx (paper: dtile wins only "
      "3D-W-10-0-0)\n",
      table.geomean_speedup("polymg-dtile-opt+", "polymg-opt+"));
  std::printf("  polymg-mixed over polymg-opt+ : %.2fx (float fine grids, "
              "defect correction)\n",
              table.geomean_speedup("polymg-mixed", "polymg-opt+"));
  return 0;
}
