// Figure 11b — storage-optimization breakdown for V-10-0-0 (2-d and
// 3-d): speedup over polymg-naive with (a) intra-group scratchpad reuse
// only, (b) intra + pooled allocation, (c) intra + pooled + inter-group
// array reuse. The paper's observation: pooling already exploits most
// inter-group reuse dynamically; static inter-group reuse adds the rest.
//
// Flags: --paper, --reps N.
#include "gbench.hpp"

namespace polymg::bench {
namespace {

SolveRunner flags_runner(const CycleConfig& cfg, int cycles, bool intra,
                         bool pool, bool inter) {
  SolveRunner r;
  auto p = std::make_shared<solvers::PoissonProblem>(
      solvers::PoissonProblem::random_rhs(cfg.ndim, cfg.n, 11));
  auto v0 = std::make_shared<grid::Buffer>(p->v.clone());
  CompileOptions o = CompileOptions::for_variant(Variant::OptPlus, cfg.ndim);
  o.intra_group_reuse = intra;
  o.pooled_allocation = pool;
  o.inter_group_reuse = inter;
  auto ex = std::make_shared<runtime::Executor>(
      opt::compile(solvers::build_cycle(cfg), o));
  r.run = [cycles, p, v0, ex] {
    grid::copy_region(p->v_view(), grid::View::over(v0->data(), p->domain()),
                      p->domain());
    for (int i = 0; i < cycles; ++i) {
      const std::vector<grid::View> ext = {p->v_view(), p->f_view()};
      ex->run(ext);
      grid::copy_region(p->v_view(), ex->output_view(0), p->domain());
    }
  };
  return r;
}

}  // namespace
}  // namespace polymg::bench

int main(int argc, char** argv) {
  using namespace polymg::bench;
  const polymg::Options opts = parse_bench_options(argc, argv);
  TraceFromOptions trace(opts);
  MetricsFromOptions metrics(opts);
  const bool paper = paper_sizes_requested(opts);
  const int reps = static_cast<int>(opts.get_int("reps", 2));
  benchmark::Initialize(&argc, argv);

  const SizeClass sc = size_classes(paper).back();  // class C
  for (int ndim : {2, 3}) {
    CycleConfig cfg;
    cfg.ndim = ndim;
    cfg.n = ndim == 2 ? sc.n2d : sc.n3d;
    cfg.levels = 4;
    cfg.n1 = 10;
    cfg.n2 = 0;
    cfg.n3 = 0;
    const int iters = ndim == 2 ? sc.iters2d : sc.iters3d;
    const std::string row = "V-" + std::to_string(ndim) + "D-10-0-0/C";
    register_point(row, "polymg-naive",
                   make_runner(Series::Naive, cfg, iters), reps);
    register_point(row, "intra",
                   flags_runner(cfg, iters, true, false, false), reps);
    register_point(row, "intra+pool",
                   flags_runner(cfg, iters, true, true, false), reps);
    register_point(row, "intra+pool+inter",
                   flags_runner(cfg, iters, true, true, true), reps);
  }

  ResultTable table;
  TableReporter reporter(&table);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  table.print("Figure 11b: storage optimization breakdown (V-10-0-0)",
              "polymg-naive");
  return 0;
}
