#include <gtest/gtest.h>

#include "polymg/ir/lowering.hpp"
#include "polymg/ir/stencil.hpp"

namespace polymg::ir {
namespace {

SourceRef ref(int slot, int ndim = 2) {
  SourceRef r;
  r.slot = slot;
  r.ndim = ndim;
  return r;
}

TEST(Lowering, JacobiSmootherLinearizes) {
  // v - w*(S(v)/h² - f): taps fold into a single linear form with a
  // modified center coefficient and a +w tap on f.
  const double w = 0.1, inv_h2 = 16.0;
  const Expr e = ref(0)() - make_const(w) * (stencil2(ref(0),
                     five_point_laplacian_2d(), inv_h2) - ref(1)());
  const auto lf = try_linearize(e, 2);
  ASSERT_TRUE(lf.has_value());
  ASSERT_EQ(lf->inputs.size(), 2u);
  EXPECT_EQ(lf->inputs[0].taps.size(), 5u);
  for (const Tap& t : lf->inputs[0].taps) {
    if (t.off[0] == 0 && t.off[1] == 0) {
      EXPECT_NEAR(t.coeff, 1.0 - w * 4.0 * inv_h2, 1e-15);
    } else {
      EXPECT_NEAR(t.coeff, w * inv_h2, 1e-15);
    }
  }
  ASSERT_EQ(lf->inputs[1].taps.size(), 1u);
  EXPECT_NEAR(lf->inputs[1].taps[0].coeff, w, 1e-15);
  EXPECT_EQ(lf->constant, 0.0);
}

TEST(Lowering, DuplicateLoadsCoalesce) {
  const Expr e = ref(0)() + ref(0)() + make_const(1.0);
  const auto lf = try_linearize(e, 2);
  ASSERT_TRUE(lf.has_value());
  ASSERT_EQ(lf->inputs[0].taps.size(), 1u);
  EXPECT_EQ(lf->inputs[0].taps[0].coeff, 2.0);
  EXPECT_EQ(lf->constant, 1.0);
}

TEST(Lowering, ZeroCoefficientTapsDrop) {
  const Expr e = ref(0)() - ref(0)() + make_const(5.0);
  const auto lf = try_linearize(e, 2);
  ASSERT_TRUE(lf.has_value());
  EXPECT_TRUE(lf->inputs.empty());
  EXPECT_EQ(lf->constant, 5.0);
}

TEST(Lowering, NonlinearFallsBack) {
  const Expr prod = ref(0)() * ref(0)();
  EXPECT_FALSE(try_linearize(prod, 2).has_value());
  const Expr div = make_const(1.0) / ref(0)();
  EXPECT_FALSE(try_linearize(div, 2).has_value());

  FunctionDecl f;
  f.name = "nl";
  f.ndim = 2;
  f.domain = poly::Box::cube(2, 0, 9);
  f.interior = poly::Box::cube(2, 1, 8);
  f.sources = {{true, 0}};
  f.defs = {prod};
  f.finalize();
  const LoweredFunc lw = lower(f);
  EXPECT_FALSE(lw.all_linear);
  EXPECT_FALSE(lw.defs[0].linear.has_value());
  EXPECT_FALSE(lw.defs[0].bytecode.empty());
}

TEST(Lowering, DivisionByConstantFolds) {
  const Expr e = ref(0)() / 4.0;
  const auto lf = try_linearize(e, 2);
  ASSERT_TRUE(lf.has_value());
  EXPECT_EQ(lf->inputs[0].taps[0].coeff, 0.25);
}

TEST(Lowering, SampledAccessKeepsScale) {
  SourceRef r = ref(0);
  r.num = {2, 2, 1};
  const Expr e = r.at(0, 1) + r.at(-1, 0);
  const auto lf = try_linearize(e, 2);
  ASSERT_TRUE(lf.has_value());
  EXPECT_EQ(lf->inputs[0].num[0], 2);
  EXPECT_EQ(lf->inputs[0].taps.size(), 2u);
}

}  // namespace
}  // namespace polymg::ir
