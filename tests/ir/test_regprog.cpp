// Register-program compilation: value-numbering CSE (shared constants,
// loads and operation trees collapse to one register), loop-invariant
// hoisting (const-only arithmetic moves to the prologue), and the
// structural checker that guards hand-corrupted programs.
#include <gtest/gtest.h>

#include "polymg/ir/regprog.hpp"

namespace polymg::ir {
namespace {

std::array<LoadIndex, kMaxDims> at(index_t i, index_t j) {
  return {LoadIndex{1, 1, i}, LoadIndex{1, 1, j}, LoadIndex{1, 1, 0}};
}

int count_kind(const std::vector<RegInstr>& is, RegOpKind k) {
  int n = 0;
  for (const RegInstr& in : is) n += in.kind == k ? 1 : 0;
  return n;
}

TEST(RegProg, SharedSubtreeCompilesOnce) {
  // (u + v) * (u + v): two loads, ONE add, one mul — the repeated
  // subtree and its leaves are value-numbered into shared registers.
  const Expr u = make_load(0, at(0, 0));
  const Expr v = make_load(1, at(0, 0));
  const Expr e = (u + v) * (u + v);
  const RegProgram p = compile_regprog(compile_bytecode(e));
  EXPECT_TRUE(p.prologue.empty());
  EXPECT_EQ(p.body.size(), 4u);
  EXPECT_EQ(count_kind(p.body, RegOpKind::Load), 2);
  EXPECT_EQ(count_kind(p.body, RegOpKind::Add), 1);
  EXPECT_EQ(count_kind(p.body, RegOpKind::Mul), 1);
  EXPECT_EQ(p.num_loads, 2);
  EXPECT_TRUE(regprog_issues(p, 2).empty());
}

TEST(RegProg, CommutativeOperandsShareOneRegister) {
  // u*c and c*u are the same value under IEEE-754, so canonical operand
  // ordering must fold them into a single Mul.
  const Expr u = make_load(0, at(0, 0));
  const Expr c = make_const(0.5);
  const Expr e = (u * c) + (c * u);
  const RegProgram p = compile_regprog(compile_bytecode(e));
  EXPECT_EQ(count_kind(p.body, RegOpKind::Mul), 1);
}

TEST(RegProg, DuplicateConstantsIntern) {
  const Expr u = make_load(0, at(0, 0));
  const Expr v = make_load(0, at(0, 1));
  const Expr e = make_const(0.25) * u + make_const(0.25) * v;
  const RegProgram p = compile_regprog(compile_bytecode(e));
  EXPECT_EQ(count_kind(p.prologue, RegOpKind::Const), 1);
}

TEST(RegProg, ConstArithmeticHoistsToPrologue) {
  // 2·3·u: the const product is position-independent, so it executes
  // once in the prologue; the body is just load + one mul.
  const Expr u = make_load(0, at(0, 0));
  const Expr e = make_const(2.0) * make_const(3.0) * u;
  const RegProgram p = compile_regprog(compile_bytecode(e));
  EXPECT_EQ(p.prologue.size(), 3u);  // two consts + their product
  EXPECT_EQ(count_kind(p.prologue, RegOpKind::Mul), 1);
  EXPECT_EQ(p.body.size(), 2u);
  EXPECT_TRUE(regprog_issues(p, 1).empty());
}

TEST(RegProg, DistinctLoadsStayDistinct) {
  // Same slot, different offsets: no bogus sharing.
  const Expr e = make_load(0, at(0, -1)) + make_load(0, at(0, 1));
  const RegProgram p = compile_regprog(compile_bytecode(e));
  EXPECT_EQ(p.num_loads, 2);
}

TEST(RegProg, FitsEngineRespectsLoadCap) {
  Expr e = make_load(0, at(0, -24));
  for (index_t j = -23; j <= 24; ++j) e = e + make_load(0, at(0, j));
  const RegProgram p = compile_regprog(compile_bytecode(e));
  EXPECT_EQ(p.num_loads, 49);
  EXPECT_GT(p.num_loads, kRegEngineMaxLoads);
  EXPECT_FALSE(regprog_fits_engine(p));
  EXPECT_TRUE(regprog_issues(p, 1).empty());  // still a valid program
}

TEST(RegProg, EmptyProgramDoesNotFitEngine) {
  EXPECT_FALSE(regprog_fits_engine(RegProgram{}));
}

TEST(RegProg, IssuesCatchCorruption) {
  const Expr u = make_load(0, at(0, 0));
  const Expr e = make_const(2.0) * u;
  const RegProgram good = compile_regprog(compile_bytecode(e));
  ASSERT_TRUE(regprog_issues(good, 1).empty());

  {  // operand reads a register that is never defined
    RegProgram p = good;
    p.body.back().a = p.num_regs + 3;
    EXPECT_FALSE(regprog_issues(p, 1).empty());
  }
  {  // two instructions write the same register
    RegProgram p = good;
    p.body.back().dst = p.body.front().dst;
    EXPECT_FALSE(regprog_issues(p, 1).empty());
  }
  {  // a Load smuggled into the prologue is position-dependent
    RegProgram p = good;
    RegInstr ld = p.body.front();
    p.prologue.push_back(ld);
    p.body.erase(p.body.begin());
    EXPECT_FALSE(regprog_issues(p, 1).empty());
  }
  {  // load slot out of range for the binding
    RegProgram p = good;
    EXPECT_FALSE(regprog_issues(p, 0).empty());
    EXPECT_TRUE(regprog_issues(p, -1).empty());  // slot check skipped
  }
  {  // num_loads bookkeeping mismatch
    RegProgram p = good;
    p.num_loads = 7;
    EXPECT_FALSE(regprog_issues(p, 1).empty());
  }
  {  // result register never written
    RegProgram p = good;
    p.result = -1;
    EXPECT_FALSE(regprog_issues(p, 1).empty());
  }
}

}  // namespace
}  // namespace polymg::ir
