#include <gtest/gtest.h>

#include "polymg/ir/expr.hpp"

namespace polymg::ir {
namespace {

std::array<LoadIndex, kMaxDims> idx2(LoadIndex a, LoadIndex b) {
  return {a, b, LoadIndex{}};
}

TEST(Expr, OperatorSugarBuildsTree) {
  const Expr e = make_const(2.0) * make_load(0, idx2({1, 1, 0}, {1, 1, 1})) +
                 3.0;
  ASSERT_EQ(e->kind, ExprKind::Add);
  EXPECT_EQ(e->rhs->kind, ExprKind::Const);
  EXPECT_EQ(e->rhs->value, 3.0);
  EXPECT_EQ(e->lhs->kind, ExprKind::Mul);
}

TEST(Expr, CollectAccessesMergesOffsets) {
  const Expr e = make_load(0, idx2({1, 1, -1}, {1, 1, 0})) +
                 make_load(0, idx2({1, 1, 1}, {1, 1, 0})) +
                 make_load(1, idx2({1, 1, 0}, {1, 1, 0}));
  const auto acc = collect_accesses(e, 2);
  ASSERT_EQ(acc.size(), 2u);
  EXPECT_EQ(acc[0].first, 0);
  EXPECT_EQ(acc[0].second.d[0], (poly::DimAccess{1, 1, -1, 1}));
  EXPECT_EQ(acc[1].first, 1);
  EXPECT_TRUE(acc[1].second.is_unit_scale());
}

TEST(Expr, CollectAccessesRejectsMixedScaleOnOneSlot) {
  const Expr e = make_load(0, idx2({1, 1, 0}, {1, 1, 0})) +
                 make_load(0, idx2({2, 1, 0}, {1, 1, 0}));
  EXPECT_THROW((void)collect_accesses(e, 2), Error);
}

TEST(Expr, ToStringReadable) {
  const Expr e =
      make_load(0, idx2({1, 1, 0}, {1, 1, 1})) - make_const(0.5);
  const std::string s = to_string(e, {"v"}, 2);
  EXPECT_NE(s.find("v(y, x+1)"), std::string::npos) << s;
  EXPECT_NE(s.find("0.5"), std::string::npos);
}

TEST(Expr, VisitReachesAllNodes) {
  const Expr e = -(make_const(1.0) + make_const(2.0));
  int n = 0;
  visit(e, [&](const ExprNode&) { ++n; });
  EXPECT_EQ(n, 4);
}

}  // namespace
}  // namespace polymg::ir
