#include <gtest/gtest.h>

#include "polymg/ir/bytecode.hpp"

namespace polymg::ir {
namespace {

std::array<LoadIndex, kMaxDims> ident() {
  return {LoadIndex{1, 1, 0}, LoadIndex{1, 1, 0}, LoadIndex{1, 1, 0}};
}

TEST(Bytecode, PostfixOrder) {
  const Expr e = make_const(2.0) * make_load(0, ident()) + make_const(1.0);
  const Bytecode bc = compile_bytecode(e);
  ASSERT_EQ(bc.size(), 5u);
  EXPECT_EQ(bc[0].kind, BcKind::PushConst);
  EXPECT_EQ(bc[1].kind, BcKind::Load);
  EXPECT_EQ(bc[2].kind, BcKind::Mul);
  EXPECT_EQ(bc[3].kind, BcKind::PushConst);
  EXPECT_EQ(bc[4].kind, BcKind::Add);
}

TEST(Bytecode, StackDepth) {
  const Expr leaf = make_const(1.0);
  EXPECT_EQ(stack_depth(compile_bytecode(leaf)), 1);
  const Expr sum = (leaf + leaf) * (leaf + leaf);
  EXPECT_EQ(stack_depth(compile_bytecode(sum)), 3);
  const Expr neg = -leaf;
  EXPECT_EQ(stack_depth(compile_bytecode(neg)), 1);
}

TEST(Bytecode, DeepRightAssociativeChain) {
  Expr e = make_const(1.0);
  for (int i = 0; i < 20; ++i) e = make_const(1.0) + e;
  const Bytecode bc = compile_bytecode(e);
  EXPECT_EQ(stack_depth(bc), 21);
}

}  // namespace
}  // namespace polymg::ir
