#include <gtest/gtest.h>

#include "polymg/ir/builder.hpp"

namespace polymg::ir {
namespace {

using poly::Box;

FuncSpec spec(const std::string& name, int ndim, poly::index_t n) {
  FuncSpec s;
  s.name = name;
  s.domain = Box::cube(ndim, 0, n + 1);
  s.interior = Box::cube(ndim, 1, n);
  return s;
}

TEST(Builder, SimplePipeline) {
  PipelineBuilder b(2);
  Handle in = b.input("in", Box::cube(2, 0, 9));
  Handle f = b.define(spec("copy", 2, 8), {in},
                      [](std::span<const SourceRef> s) { return s[0](); });
  b.mark_output(f);
  Pipeline p = b.build();
  EXPECT_EQ(p.num_stages(), 1);
  EXPECT_TRUE(p.is_output(0));
  EXPECT_TRUE(p.funcs[0].sources[0].external);
}

TEST(Builder, TStencilExpandsSteps) {
  PipelineBuilder b(2);
  Handle v = b.input("v", Box::cube(2, 0, 9));
  Handle f = b.input("f", Box::cube(2, 0, 9));
  Handle out = b.define_tstencil(
      spec("sm", 2, 8), v, {f}, 4, [](std::span<const SourceRef> s) {
        return s[0]() + make_const(0.25) * s[1]();
      });
  b.mark_output(out);
  Pipeline p = b.build();
  EXPECT_EQ(p.num_stages(), 4);
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(p.funcs[t].construct, ConstructKind::TStencilStep);
    EXPECT_EQ(p.funcs[t].time_step, t);
    EXPECT_EQ(p.funcs[t].time_chain, 0);
  }
  // Step 1 chains on step 0.
  EXPECT_FALSE(p.funcs[1].sources[0].external);
  EXPECT_EQ(p.funcs[1].sources[0].index, 0);
}

TEST(Builder, TStencilZeroStepsReturnsInput) {
  PipelineBuilder b(2);
  Handle v = b.input("v", Box::cube(2, 0, 9));
  Handle out = b.define_tstencil(spec("sm", 2, 8), v, {}, 0,
                                 [](std::span<const SourceRef> s) {
                                   return s[0]();
                                 });
  EXPECT_TRUE(out.external);
  EXPECT_EQ(out.index, v.index);
}

TEST(Builder, RestrictInstallsScaleTwo) {
  PipelineBuilder b(2);
  Handle in = b.input("fine", Box::cube(2, 0, 17));
  Handle r = b.define_restrict(spec("r", 2, 7), {in},
                               [](std::span<const SourceRef> s) {
                                 return s[0].at(0, 0) + s[0].at(1, 1);
                               });
  b.mark_output(r);
  Pipeline p = b.build();
  const poly::Access& a = p.funcs[0].access_for(0);
  EXPECT_EQ(a.d[0].num, 2);
  EXPECT_EQ(a.d[0].den, 1);
  EXPECT_EQ(a.d[0].hi, 1);
  EXPECT_EQ(p.funcs[0].construct, ConstructKind::Restrict);
}

TEST(Builder, InterpInstallsScaleHalfAndParity) {
  PipelineBuilder b(2);
  Handle in = b.input("coarse", Box::cube(2, 0, 5));
  Handle e = b.define_interp(
      spec("e", 2, 8), {in}, [](std::span<const SourceRef> s) {
        std::vector<Expr> cases;
        for (int c = 0; c < 4; ++c) cases.push_back(s[0].at(0, 0));
        return cases;
      });
  b.mark_output(e);
  Pipeline p = b.build();
  EXPECT_TRUE(p.funcs[0].parity_piecewise);
  EXPECT_EQ(p.funcs[0].defs.size(), 4u);
  const poly::Access& a = p.funcs[0].access_for(0);
  EXPECT_EQ(a.d[0].num, 1);
  EXPECT_EQ(a.d[0].den, 2);
}

TEST(Builder, RejectsForwardReferenceAndEmptyOutputs) {
  PipelineBuilder b(2);
  (void)b.input("in", Box::cube(2, 0, 9));
  EXPECT_THROW((void)b.build(), Error);  // no functions / outputs
}

TEST(Builder, ValidateRejectsOutOfBoundsFootprint) {
  // A radius-2 stencil whose interior only leaves a width-1 ghost ring
  // would read outside the producer's domain: build() must reject it.
  PipelineBuilder b(2);
  Handle in = b.input("in", Box::cube(2, 0, 9));
  Handle f = b.define(spec("wide", 2, 8), {in},
                      [](std::span<const SourceRef> s) {
                        return s[0].at(-2, 0) + s[0].at(2, 0);
                      });
  b.mark_output(f);
  EXPECT_THROW((void)b.build(), Error);
}

TEST(Builder, ValidateAcceptsShrunkInteriorForWideStencil) {
  PipelineBuilder b(2);
  Handle in = b.input("in", Box::cube(2, 0, 9));
  FuncSpec s = spec("wide", 2, 8);
  s.interior = Box::cube(2, 2, 7);  // radius-2 ghost ring
  Handle f = b.define(s, {in}, [](std::span<const SourceRef> r) {
    return r[0].at(-2, 0) + r[0].at(2, 0);
  });
  b.mark_output(f);
  (void)b.build();  // must not throw
}

TEST(Builder, ValidateCatchesInteriorEscape) {
  PipelineBuilder b(2);
  Handle in = b.input("in", Box::cube(2, 0, 9));
  FuncSpec s = spec("bad", 2, 8);
  s.interior = Box::cube(2, 0, 20);  // escapes the domain
  EXPECT_THROW((void)b.define(s, {in},
                              [](std::span<const SourceRef> r) {
                                return r[0]();
                              }),
               Error);
}

}  // namespace
}  // namespace polymg::ir
