#include <gtest/gtest.h>

#include "polymg/ir/lowering.hpp"
#include "polymg/ir/stencil.hpp"

namespace polymg::ir {
namespace {

SourceRef ref2(int slot) {
  SourceRef r;
  r.slot = slot;
  r.ndim = 2;
  return r;
}

TEST(Stencil, FivePointLaplacianTaps) {
  const Expr e = stencil2(ref2(0), five_point_laplacian_2d(), 1.0);
  const auto lf = try_linearize(e, 2);
  ASSERT_TRUE(lf.has_value());
  ASSERT_EQ(lf->inputs.size(), 1u);
  EXPECT_EQ(lf->inputs[0].taps.size(), 5u);  // zero weights dropped
  double center = 0;
  for (const Tap& t : lf->inputs[0].taps) {
    if (t.off[0] == 0 && t.off[1] == 0) center = t.coeff;
  }
  EXPECT_EQ(center, 4.0);
}

TEST(Stencil, ScaleMultipliesAllWeights) {
  const Expr e = stencil2(ref2(0), full_weighting_2d(), 1.0 / 16);
  const auto lf = try_linearize(e, 2);
  ASSERT_TRUE(lf.has_value());
  double sum = 0;
  for (const Tap& t : lf->inputs[0].taps) sum += t.coeff;
  EXPECT_NEAR(sum, 1.0, 1e-15);  // full weighting preserves constants
}

TEST(Stencil, DefaultCenterIsHalfSize) {
  // 3x3 stencil: weight w[0][0] lands at offset (-1, -1).
  Weights2 w{{1, 0, 0}, {0, 0, 0}, {0, 0, 0}};
  const Expr e = stencil2(ref2(0), w);
  ASSERT_EQ(e->kind, ExprKind::Load);
  EXPECT_EQ(e->idx[0].off, -1);
  EXPECT_EQ(e->idx[1].off, -1);
}

TEST(Stencil, ExplicitCenterOverride) {
  Weights2 w{{1, 0}, {0, 2}};
  const Expr e = stencil2(ref2(0), w, 1.0, std::array<int, 2>{0, 0});
  const auto lf = try_linearize(e, 2);
  ASSERT_TRUE(lf.has_value());
  ASSERT_EQ(lf->inputs[0].taps.size(), 2u);
  EXPECT_EQ(lf->inputs[0].taps[0].off[0], 0);  // sorted by offset
  EXPECT_EQ(lf->inputs[0].taps[1].off[0], 1);
  EXPECT_EQ(lf->inputs[0].taps[1].coeff, 2.0);
}

TEST(Stencil, RejectsRaggedAndAllZero) {
  EXPECT_THROW((void)stencil2(ref2(0), {{1, 2}, {3}}), Error);
  EXPECT_THROW((void)stencil2(ref2(0), {{0, 0}, {0, 0}}), Error);
}

TEST(Stencil, ThreeDSevenPoint) {
  SourceRef r = ref2(0);
  r.ndim = 3;
  const Expr e = stencil3(r, seven_point_laplacian_3d(), 1.0);
  const auto lf = try_linearize(e, 3);
  ASSERT_TRUE(lf.has_value());
  EXPECT_EQ(lf->inputs[0].taps.size(), 7u);
}

TEST(Stencil, FullWeighting3dSumsToOne) {
  SourceRef r = ref2(0);
  r.ndim = 3;
  const Expr e = stencil3(r, full_weighting_3d(), 1.0 / 64);
  const auto lf = try_linearize(e, 3);
  ASSERT_TRUE(lf.has_value());
  EXPECT_EQ(lf->inputs[0].taps.size(), 27u);
  double sum = 0;
  for (const Tap& t : lf->inputs[0].taps) sum += t.coeff;
  EXPECT_NEAR(sum, 1.0, 1e-15);
}

}  // namespace
}  // namespace polymg::ir
