// JIT kernel specialization: bit-exactness against the interpreted
// engines, schedule/thread independence of specialized plans, the
// two-level kernel cache (memory -> disk -> compile, stale rejection),
// and every rung of the fallback ladder (injected compile fault, missing
// toolchain).
//
// Executor-level coverage uses the variable-coefficient pipeline: its
// β-weighted Jacobi stages divide by a coefficient sum, so the
// linearizer rejects them and they are exactly the definitions the JIT
// specializes. Constant-coefficient Poisson plans are all-linear — they
// keep the tap-loop and bind nothing, which is itself asserted below.
//
// Tests that need a working host compiler GTEST_SKIP when none is
// available — the suite as a whole must pass on a toolchain-less host
// (that is the fallback guarantee, and CI runs exactly that).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "polymg/codegen/emit_c.hpp"
#include "polymg/codegen/jit.hpp"
#include "polymg/common/fault.hpp"
#include "polymg/common/parallel.hpp"
#include "polymg/common/rng.hpp"
#include "polymg/grid/ops.hpp"
#include "polymg/ir/jit_abi.hpp"
#include "polymg/ir/stencil.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/obs/trace.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/runtime/executor.hpp"
#include "polymg/runtime/kernels.hpp"
#include "polymg/solvers/cycles.hpp"
#include "polymg/solvers/poisson.hpp"
#include "polymg/solvers/varcoef.hpp"

namespace polymg::codegen {
namespace {

using grid::Box;
using grid::Buffer;
using grid::View;
using opt::CompileOptions;
using opt::JitMode;
using opt::Variant;
using poly::index_t;
using solvers::CycleConfig;
using solvers::CycleKind;
using solvers::VarCoefLevels;
using solvers::VarCoefProblem;

std::uint64_t ctr(const char* name) {
  return obs::Metrics::instance().counter(name).value();
}

/// Point every test at its own empty cache directory (and drop loaded
/// modules) so counter deltas and on-disk artifacts are deterministic.
std::string fresh_cache_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "polymg-jit-" + tag + "-" +
                          std::to_string(getpid());
  std::filesystem::remove_all(dir);
  set_jit_cache_dir(dir);
  jit_clear_memory_cache();
  return dir;
}

bool toolchain() { return jit_toolchain_available(); }

/// 3×3×3 Gaussian-style weights (every tap nonzero → 27 loads).
ir::Weights3 dense_27pt() {
  ir::Weights3 w(3, ir::Weights2(3, std::vector<double>(3, 0.0)));
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      for (int k = 0; k < 3; ++k) {
        const int taps = (i == 1) + (j == 1) + (k == 1);
        w[i][j][k] = 1.0 / (1 << (3 - taps));
      }
    }
  }
  return w;
}

struct Stencil {
  std::string name;
  int ndim;
  ir::Expr expr;
  int nsrcs;
};

/// The four bench_kernels stencils (5-pt/9-pt 2-d, 27-pt 3-d, varcoef).
std::vector<Stencil> bench_stencils() {
  std::vector<Stencil> cases;
  {
    ir::SourceRef u;
    u.slot = 0;
    u.ndim = 2;
    cases.push_back(
        {"5pt-2d", 2, ir::stencil2(u, ir::five_point_laplacian_2d(), 0.25),
         1});
    cases.push_back(
        {"9pt-2d", 2, ir::stencil2(u, ir::full_weighting_2d(), 1.0 / 16),
         1});
  }
  {
    ir::SourceRef u;
    u.slot = 0;
    u.ndim = 3;
    cases.push_back(
        {"27pt-3d", 3, ir::stencil3(u, dense_27pt(), 1.0 / 27), 1});
  }
  {
    ir::SourceRef u, cf;
    u.slot = 0;
    u.ndim = 2;
    cf.slot = 1;
    cf.ndim = 2;
    cases.push_back(
        {"varcoef-2d", 2,
         cf() * ir::stencil2(u, ir::five_point_laplacian_2d(), 0.25) +
             0.5 * u.at(0, 0),
         2});
  }
  return cases;
}

Buffer random_grid(const Box& dom, std::uint64_t seed) {
  Buffer b = grid::make_grid(dom);
  Rng rng(seed);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng.uniform(-1, 1);
  return b;
}

/// Run a def-level JIT kernel through the raw ABI.
void run_jit_kernel(const JitKernel& k, View out,
                    const std::vector<View>& srcs, const Box& region) {
  ir::JitSrcView js[ir::kJitMaxSrcSlots] = {};
  for (std::size_t s = 0; s < srcs.size(); ++s) {
    js[s].ptr = srcs[s].ptr;
    for (int d = 0; d < 3; ++d) {
      js[s].origin[d] = srcs[s].origin[d];
      js[s].stride[d] = srcs[s].stride[d];
    }
  }
  std::int64_t lo[3] = {0, 0, 0};
  std::int64_t hi[3] = {-1, -1, -1};
  for (int d = 0; d < out.ndim; ++d) {
    lo[d] = region.dim(d).lo;
    hi[d] = region.dim(d).hi;
  }
  k.fn(out.ptr, out.origin.data(), out.stride.data(), js, lo, hi);
}

/// All-linear constant-coefficient W-cycle: binds no executor kernels.
CycleConfig w2d() {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 3;
  cfg.kind = CycleKind::W;
  return cfg;
}

/// Variable-coefficient W-cycle: the β-weighted Jacobi defs are
/// non-linear, so this is the plan the executor-level JIT specializes.
CycleConfig vc2d() {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 3;
  cfg.kind = CycleKind::W;
  return cfg;
}

/// Compile + run one Poisson cycle at `nthreads`; return the raw output
/// bits (and optionally how many defs got native kernels).
std::vector<double> run_bits(const CycleConfig& cfg, CompileOptions o,
                             int nthreads, int* bound = nullptr) {
  const int prev = max_threads();
  set_num_threads(nthreads);
  auto p = solvers::PoissonProblem::random_rhs(cfg.ndim, cfg.n, 21);
  runtime::Executor ex(opt::compile(solvers::build_cycle(cfg), o));
  if (bound != nullptr) *bound = jit_bound_kernels(ex.plan());
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  ex.run(ext);
  const View out = ex.output_view(0);
  const int func = ex.plan().pipe.outputs[0];
  const index_t count = ex.plan().pipe.funcs[func].domain.count();
  std::vector<double> bits(static_cast<std::size_t>(count));
  std::memcpy(bits.data(), out.ptr, sizeof(double) * bits.size());
  set_num_threads(prev);
  return bits;
}

/// Same, for one variable-coefficient cycle (the specializable plan).
std::vector<double> run_bits_vc(const CycleConfig& cfg, CompileOptions o,
                                int nthreads, int* bound = nullptr) {
  const int prev = max_threads();
  set_num_threads(nthreads);
  VarCoefProblem p =
      VarCoefProblem::smooth_coefficients(cfg.ndim, cfg.n, 21);
  VarCoefLevels levels(cfg, p);
  runtime::Executor ex(
      opt::compile(solvers::build_varcoef_cycle(cfg), o));
  if (bound != nullptr) *bound = jit_bound_kernels(ex.plan());
  const std::vector<View> ext = levels.externals(p);
  ex.run(ext);
  const View out = ex.output_view(0);
  const int func = ex.plan().pipe.outputs[0];
  const index_t count = ex.plan().pipe.funcs[func].domain.count();
  std::vector<double> bits(static_cast<std::size_t>(count));
  std::memcpy(bits.data(), out.ptr, sizeof(double) * bits.size());
  set_num_threads(prev);
  return bits;
}

// -- emission-only checks (no toolchain required) ---------------------

TEST(Jit, EmitContainsSimdKernelsAndStaleGuards) {
  auto plan = opt::compile(solvers::build_varcoef_cycle(vc2d()),
                           CompileOptions::for_variant(Variant::OptPlus, 2));
  const std::string c = emit_jit_c(plan);
  EXPECT_NE(c.find("#pragma omp simd"), std::string::npos);
  EXPECT_NE(c.find("pmg_k"), std::string::npos);
  // The stale-detection symbols every module must export.
  EXPECT_NE(c.find("pmg_abi_version"), std::string::npos);
  EXPECT_NE(c.find("pmg_key"), std::string::npos);
  // restrict row pointers are the point of specializing.
  EXPECT_NE(c.find("restrict"), std::string::npos);
}

TEST(Jit, GeneratedLocCountsSpecializedKernels) {
  CompileOptions on = CompileOptions::for_variant(Variant::OptPlus, 2);
  CompileOptions off = on;
  off.jit = JitMode::Off;
  const auto pipe = solvers::build_varcoef_cycle(vc2d());
  const int with_jit = generated_loc(opt::compile(pipe, on));
  const int without = generated_loc(opt::compile(pipe, off));
  EXPECT_GT(with_jit, without);
}

TEST(Jit, ParseModeRejectsUnknown) {
  bool ok = false;
  EXPECT_EQ(parse_jit_mode("off", &ok), JitMode::Off);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_jit_mode("auto", &ok), JitMode::Auto);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_jit_mode("on", &ok), JitMode::On);
  EXPECT_TRUE(ok);
  parse_jit_mode("bogus", &ok);
  EXPECT_FALSE(ok);
}

TEST(Jit, LinearPlanKeepsTapLoopQuietly) {
  // Constant-coefficient Poisson lowers to all-linear defs; the JIT must
  // leave the tap-loop alone (the guarded oracle's reference fallback is
  // bit-compared against it) and must not count the skip as a fallback.
  // No compile is ever attempted, so this holds without a toolchain.
  fresh_cache_dir("linear");
  const std::uint64_t f0 = ctr("jit.fallbacks");
  const std::uint64_t c0 = ctr("jit.compiles");
  CompileOptions o = CompileOptions::for_variant(Variant::OptPlus, 2);
  o.jit = JitMode::On;
  int bound = -1;
  const std::vector<double> on = run_bits(w2d(), o, 2, &bound);
  EXPECT_EQ(bound, 0);
  EXPECT_EQ(ctr("jit.fallbacks"), f0);
  EXPECT_EQ(ctr("jit.compiles"), c0);

  CompileOptions off = o;
  off.jit = JitMode::Off;
  const std::vector<double> ref = run_bits(w2d(), off, 2);
  ASSERT_EQ(ref.size(), on.size());
  EXPECT_EQ(0, std::memcmp(ref.data(), on.data(),
                           sizeof(double) * ref.size()));
}

// -- def-level bit-exactness ------------------------------------------

TEST(Jit, DefKernelsBitExactVsBothEngines) {
  if (!toolchain()) GTEST_SKIP() << "no host compiler";
  fresh_cache_dir("defexact");
  for (const Stencil& c : bench_stencils()) {
    const index_t edge = c.ndim == 2 ? 65 : 21;
    const Box dom = Box::cube(c.ndim, 0, edge + 1);
    const Box region = Box::cube(c.ndim, 1, edge);
    std::vector<Buffer> bufs;
    std::vector<View> srcs;
    for (int s = 0; s < c.nsrcs; ++s) {
      bufs.push_back(random_grid(dom, 7 + static_cast<std::uint64_t>(s)));
      srcs.push_back(View::over(bufs.back().data(), dom));
    }
    const ir::Bytecode bc = ir::compile_bytecode(c.expr);
    const JitKernel k = jit_kernel_for_def(c.ndim, bc);
    ASSERT_TRUE(static_cast<bool>(k)) << c.name;

    Buffer got = grid::make_grid(region);
    Buffer ref = grid::make_grid(region);
    View gv = View::over(got.data(), region);
    View rv = View::over(ref.data(), region);

    run_jit_kernel(k, gv, srcs, region);
    runtime::apply_regprog(ir::compile_regprog(bc), rv, srcs, region);
    EXPECT_EQ(0, std::memcmp(got.data(), ref.data(),
                             sizeof(double) * got.size()))
        << c.name << " vs register engine";

    runtime::apply_bytecode(bc, rv, srcs, region);
    EXPECT_EQ(0, std::memcmp(got.data(), ref.data(),
                             sizeof(double) * got.size()))
        << c.name << " vs stack interpreter";
  }
}

// -- executor-level: specialization, schedules, threads ---------------

TEST(Jit, ExecutorSpecializesNonLinearDefs) {
  if (!toolchain()) GTEST_SKIP() << "no host compiler";
  fresh_cache_dir("execbind");
  CompileOptions o = CompileOptions::for_variant(Variant::OptPlus, 2);
  o.jit = JitMode::On;
  runtime::Executor ex(
      opt::compile(solvers::build_varcoef_cycle(vc2d()), o));
  int nonlinear = 0;
  for (const auto& lf : ex.plan().lowered) {
    for (const auto& d : lf.defs) {
      if (d.linear.has_value()) {
        // Linear defs keep the tap-loop — never a native kernel.
        EXPECT_EQ(d.jit, nullptr);
      } else {
        EXPECT_NE(d.jit, nullptr);
        ++nonlinear;
      }
    }
  }
  EXPECT_GT(nonlinear, 0);
  EXPECT_EQ(jit_bound_kernels(ex.plan()), nonlinear);
  EXPECT_NE(ex.plan().jit_module, nullptr);
}

TEST(Jit, BitExactAcrossSchedulesAndThreads) {
  if (!toolchain()) GTEST_SKIP() << "no host compiler";
  fresh_cache_dir("execsched");
  // The varcoef family requires the Jacobi smoother; its β-weighted
  // stages are the non-linear (and therefore jitted) kernels.
  CycleConfig cfg = vc2d();
  CompileOptions dep = CompileOptions::for_variant(Variant::OptPlus, 2);
  dep.jit = JitMode::On;
  CompileOptions barrier = dep;
  barrier.dependence_schedule = false;

  int bound = 0;
  const std::vector<double> ref = run_bits_vc(cfg, dep, 1, &bound);
  ASSERT_GT(bound, 0);
  for (int threads : {2, 4}) {
    const std::vector<double> got = run_bits_vc(cfg, dep, threads);
    ASSERT_EQ(ref.size(), got.size());
    EXPECT_EQ(0, std::memcmp(ref.data(), got.data(),
                             sizeof(double) * ref.size()))
        << "threads " << threads;
  }
  const std::vector<double> bar = run_bits_vc(cfg, barrier, 2);
  ASSERT_EQ(ref.size(), bar.size());
  EXPECT_EQ(0, std::memcmp(ref.data(), bar.data(),
                           sizeof(double) * ref.size()))
      << "barrier schedule";
}

TEST(Jit, SpecializedPlanMatchesInterpretedBitExact) {
  if (!toolchain()) GTEST_SKIP() << "no host compiler";
  fresh_cache_dir("execexact");
  // Linear defs run the tap-loop under both modes and jit kernels are
  // bit-exact vs the interpreted engines, so jit-on and jit-off plans
  // must agree byte for byte — the same guarantee the guarded oracle's
  // reference-plan comparison relies on.
  CompileOptions on = CompileOptions::for_variant(Variant::OptPlus, 2);
  on.jit = JitMode::On;
  CompileOptions off = on;
  off.jit = JitMode::Off;
  int bound = 0;
  const std::vector<double> a = run_bits_vc(vc2d(), on, 2, &bound);
  ASSERT_GT(bound, 0);
  const std::vector<double> b = run_bits_vc(vc2d(), off, 2);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), sizeof(double) * a.size()));
}

// -- cache behaviour --------------------------------------------------

TEST(Jit, CacheHitsSkipRecompilation) {
  if (!toolchain()) GTEST_SKIP() << "no host compiler";
  fresh_cache_dir("cache");
  const Stencil c = bench_stencils()[0];
  const ir::Bytecode bc = ir::compile_bytecode(c.expr);

  const std::uint64_t c0 = ctr("jit.compiles");
  ASSERT_TRUE(static_cast<bool>(jit_kernel_for_def(c.ndim, bc)));
  EXPECT_EQ(ctr("jit.compiles"), c0 + 1);

  // Second request: in-memory hit, zero recompiles.
  const std::uint64_t m0 = ctr("jit.mem_hits");
  ASSERT_TRUE(static_cast<bool>(jit_kernel_for_def(c.ndim, bc)));
  EXPECT_EQ(ctr("jit.compiles"), c0 + 1);
  EXPECT_EQ(ctr("jit.mem_hits"), m0 + 1);

  // New process simulated by dropping loaded modules: disk hit, still
  // zero recompiles.
  jit_clear_memory_cache();
  const std::uint64_t d0 = ctr("jit.disk_hits");
  ASSERT_TRUE(static_cast<bool>(jit_kernel_for_def(c.ndim, bc)));
  EXPECT_EQ(ctr("jit.compiles"), c0 + 1);
  EXPECT_EQ(ctr("jit.disk_hits"), d0 + 1);
}

TEST(Jit, CorruptDiskEntryIsRejectedAndRecompiled) {
  if (!toolchain()) GTEST_SKIP() << "no host compiler";
  const std::string dir = fresh_cache_dir("corrupt");
  const Stencil c = bench_stencils()[0];
  const ir::Bytecode bc = ir::compile_bytecode(c.expr);
  ASSERT_TRUE(static_cast<bool>(jit_kernel_for_def(c.ndim, bc)));

  // Garbage where the shared object was: dlopen must fail, the entry be
  // discarded, and the kernel rebuilt — never half-trusted.
  std::string so;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".so") so = e.path().string();
  }
  ASSERT_FALSE(so.empty());
  // Drop (and dlclose) the loaded module BEFORE scribbling over its
  // file: truncating a still-mapped shared object raises SIGBUS.
  jit_clear_memory_cache();
  {
    std::ofstream os(so, std::ios::binary | std::ios::trunc);
    os << "not an ELF object";
  }
  const std::uint64_t s0 = ctr("jit.stale_rejects");
  const std::uint64_t c0 = ctr("jit.compiles");
  const JitKernel k = jit_kernel_for_def(c.ndim, bc);
  ASSERT_TRUE(static_cast<bool>(k));
  EXPECT_EQ(ctr("jit.stale_rejects"), s0 + 1);
  EXPECT_EQ(ctr("jit.compiles"), c0 + 1);
}

TEST(Jit, WrongKeyModuleIsStale) {
  if (!toolchain()) GTEST_SKIP() << "no host compiler";
  const std::string dir = fresh_cache_dir("stalekey");
  const std::vector<Stencil> cs = bench_stencils();
  const ir::Bytecode bc_a = ir::compile_bytecode(cs[0].expr);
  const ir::Bytecode bc_b = ir::compile_bytecode(cs[1].expr);
  ASSERT_TRUE(static_cast<bool>(jit_kernel_for_def(2, bc_a)));
  std::string so_a;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".so") so_a = e.path().string();
  }
  ASSERT_FALSE(so_a.empty());
  ASSERT_TRUE(static_cast<bool>(jit_kernel_for_def(2, bc_b)));
  std::string so_b;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".so" && e.path().string() != so_a) {
      so_b = e.path().string();
    }
  }
  ASSERT_FALSE(so_b.empty());

  // A loadable module under the wrong file name: the embedded pmg_key
  // disagrees with the cache key, so it must be rejected as stale even
  // though dlopen succeeds. dlclose everything before replacing the
  // file — overwriting a mapped object is a SIGBUS.
  jit_clear_memory_cache();
  std::filesystem::copy_file(
      so_a, so_b, std::filesystem::copy_options::overwrite_existing);
  const std::uint64_t s0 = ctr("jit.stale_rejects");
  const JitKernel k = jit_kernel_for_def(2, bc_b);
  ASSERT_TRUE(static_cast<bool>(k));
  EXPECT_EQ(ctr("jit.stale_rejects"), s0 + 1);

  // And the rebuilt kernel is the right one: bit-exact vs bc_b's engine.
  const index_t edge = 33;
  const Box dom = Box::cube(2, 0, edge + 1);
  const Box region = Box::cube(2, 1, edge);
  Buffer src = random_grid(dom, 11);
  const std::vector<View> srcs = {View::over(src.data(), dom)};
  Buffer got = grid::make_grid(region);
  Buffer ref = grid::make_grid(region);
  View gv = View::over(got.data(), region);
  View rv = View::over(ref.data(), region);
  run_jit_kernel(k, gv, srcs, region);
  runtime::apply_regprog(ir::compile_regprog(bc_b), rv, srcs, region);
  EXPECT_EQ(0, std::memcmp(got.data(), ref.data(),
                           sizeof(double) * got.size()));
}

// -- fallback ladder --------------------------------------------------

TEST(Jit, InjectedCompileFaultFallsBackWithTraceEvent) {
  if (!toolchain()) GTEST_SKIP() << "no host compiler";
  fresh_cache_dir("fault");
  CompileOptions o = CompileOptions::for_variant(Variant::OptPlus, 2);
  o.jit = JitMode::On;
  const std::uint64_t f0 = ctr("jit.fallbacks");

  obs::TraceSession::start();
  std::vector<double> got;
  {
    fault::ScopedFault f(fault::kJitCompile, /*count=*/1);
    got = run_bits_vc(vc2d(), o, 2);
  }
  obs::TraceSession::stop();

  EXPECT_EQ(ctr("jit.fallbacks"), f0 + 1);
  bool saw_fallback = false;
  for (const obs::TraceEvent& e : obs::TraceSession::snapshot()) {
    saw_fallback = saw_fallback || e.kind == obs::EventKind::JitFallback;
  }
  EXPECT_TRUE(saw_fallback);

  // The degraded plan has no native kernels, so it runs the exact same
  // dispatch as a jit-off plan: byte-identical output.
  CompileOptions off = o;
  off.jit = JitMode::Off;
  const std::vector<double> ref = run_bits_vc(vc2d(), off, 2);
  ASSERT_EQ(ref.size(), got.size());
  EXPECT_EQ(0, std::memcmp(ref.data(), got.data(),
                           sizeof(double) * ref.size()));
}

TEST(Jit, MissingToolchainFallsBack) {
  fresh_cache_dir("notc");
  setenv("POLYMG_JIT_CC", "/nonexistent/pmg-no-such-cc", 1);
  EXPECT_FALSE(jit_toolchain_available());

  const std::uint64_t cf0 = ctr("jit.compile_failures");
  const std::uint64_t f0 = ctr("jit.fallbacks");
  CompileOptions o = CompileOptions::for_variant(Variant::OptPlus, 2);
  o.jit = JitMode::Auto;  // quiet fallback is the headless default
  const std::vector<double> got = run_bits_vc(vc2d(), o, 2);
  EXPECT_GE(ctr("jit.compile_failures"), cf0 + 1);
  EXPECT_GE(ctr("jit.fallbacks"), f0 + 1);

  unsetenv("POLYMG_JIT_CC");

  CompileOptions off = o;
  off.jit = JitMode::Off;
  const std::vector<double> ref = run_bits_vc(vc2d(), off, 2);
  ASSERT_EQ(ref.size(), got.size());
  EXPECT_EQ(0, std::memcmp(ref.data(), got.data(),
                           sizeof(double) * ref.size()));
}

}  // namespace
}  // namespace polymg::codegen
