// The sandboxed JIT compile path (DESIGN.md §15): a wedged toolchain
// (fault site jit.hang) is killed by the waitpid watchdog within the
// compile budget and degrades to the interpreted engines byte-for-byte;
// a full cache volume (fault site cache.enospc) degrades the same way;
// and the flock-guarded disk cache lets two PROCESSES race the same
// kernel key with exactly one compile between them.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "polymg/codegen/jit.hpp"
#include "polymg/common/fault.hpp"
#include "polymg/common/parallel.hpp"
#include "polymg/grid/ops.hpp"
#include "polymg/ir/stencil.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/runtime/executor.hpp"
#include "polymg/solvers/cycles.hpp"
#include "polymg/solvers/varcoef.hpp"

namespace polymg::codegen {
namespace {

using grid::View;
using opt::CompileOptions;
using opt::JitMode;
using opt::Variant;
using poly::index_t;
using solvers::CycleConfig;
using solvers::CycleKind;
using solvers::VarCoefLevels;
using solvers::VarCoefProblem;

std::uint64_t ctr(const char* name) {
  return obs::Metrics::instance().counter(name).value();
}

std::string fresh_cache_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "polymg-sbx-" + tag + "-" +
                          std::to_string(getpid());
  std::filesystem::remove_all(dir);
  set_jit_cache_dir(dir);
  jit_clear_memory_cache();
  return dir;
}

bool toolchain() { return jit_toolchain_available(); }

class JitSandbox : public ::testing::Test {
protected:
  void SetUp() override { fault::FaultInjector::instance().reset(); }
  void TearDown() override {
    fault::FaultInjector::instance().reset();
    unsetenv("POLYMG_JIT_TIMEOUT_MS");
  }
};

/// The specializable plan: varcoef's β-weighted Jacobi defs are
/// non-linear, so JitMode::On attempts a module compile.
CycleConfig vc2d() {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 3;
  cfg.kind = CycleKind::W;
  return cfg;
}

std::vector<double> run_bits_vc(const CycleConfig& cfg, CompileOptions o) {
  VarCoefProblem p = VarCoefProblem::smooth_coefficients(cfg.ndim, cfg.n, 21);
  VarCoefLevels levels(cfg, p);
  runtime::Executor ex(opt::compile(solvers::build_varcoef_cycle(cfg), o));
  const std::vector<View> ext = levels.externals(p);
  ex.run(ext);
  const View out = ex.output_view(0);
  const int func = ex.plan().pipe.outputs[0];
  const index_t count = ex.plan().pipe.funcs[func].domain.count();
  std::vector<double> bits(static_cast<std::size_t>(count));
  std::memcpy(bits.data(), out.ptr, sizeof(double) * bits.size());
  return bits;
}

/// A simple specializable def-level expression (5-pt Laplacian).
ir::Expr fivept() {
  ir::SourceRef u;
  u.slot = 0;
  u.ndim = 2;
  return ir::stencil2(u, ir::five_point_laplacian_2d(), 0.25);
}

// ---------------------------------------------------------------------
// jit.hang: a wedged compiler is reaped by the watchdog, not waited on.
// ---------------------------------------------------------------------

TEST_F(JitSandbox, HangingCompilerIsKilledAndFallsBack) {
  if (!toolchain()) GTEST_SKIP() << "no host compiler";
  fresh_cache_dir("hang");
  // 300 ms budget: the injected hang parks the child in pause() — it
  // burns no CPU, so ONLY the watchdog can end it.
  setenv("POLYMG_JIT_TIMEOUT_MS", "300", 1);

  const std::uint64_t to0 = ctr("jit.compile_timeouts");
  const std::uint64_t hang0 = ctr("fault.jit_hang");
  const std::uint64_t f0 = ctr("jit.fallbacks");

  CompileOptions o = CompileOptions::for_variant(Variant::OptPlus, 2);
  o.jit = JitMode::On;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> got;
  {
    fault::ScopedFault hang(fault::kJitHang, /*count=*/1);
    got = run_bits_vc(vc2d(), o);
  }
  const double ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();

  EXPECT_EQ(ctr("jit.compile_timeouts"), to0 + 1);
  EXPECT_EQ(ctr("fault.jit_hang"), hang0 + 1);
  EXPECT_GE(ctr("jit.fallbacks"), f0 + 1);
  // Without the watchdog this would hang forever; 300 ms budget plus
  // the actual solve leaves this far under 10 s even on a loaded host.
  EXPECT_LT(ms, 10000.0);

  // The degraded plan runs the interpreted dispatch: byte-identical to
  // a jit-off plan.
  CompileOptions off = o;
  off.jit = JitMode::Off;
  const std::vector<double> ref = run_bits_vc(vc2d(), off);
  ASSERT_EQ(ref.size(), got.size());
  EXPECT_EQ(0, std::memcmp(ref.data(), got.data(),
                           sizeof(double) * ref.size()));

  // The cache holds no half-written artifact: with the fault gone the
  // same plan compiles cleanly.
  unsetenv("POLYMG_JIT_TIMEOUT_MS");
  const std::uint64_t c0 = ctr("jit.compiles");
  const std::vector<double> clean = run_bits_vc(vc2d(), o);
  EXPECT_GT(ctr("jit.compiles"), c0);
  ASSERT_EQ(ref.size(), clean.size());
  EXPECT_EQ(0, std::memcmp(ref.data(), clean.data(),
                           sizeof(double) * ref.size()));
}

// ---------------------------------------------------------------------
// cache.enospc: a full cache volume degrades, never corrupts.
// ---------------------------------------------------------------------

TEST_F(JitSandbox, CacheEnospcDegradesToInterpreter) {
  if (!toolchain()) GTEST_SKIP() << "no host compiler";
  fresh_cache_dir("enospc");
  const ir::Bytecode bc = ir::compile_bytecode(fivept());

  const std::uint64_t e0 = ctr("fault.cache_enospc");
  JitKernel k;
  {
    fault::ScopedFault enospc(fault::kCacheEnospc, /*count=*/1);
    k = jit_kernel_for_def(2, bc);
  }
  // The write failed mid-stream: no kernel, and the caller's register-
  // engine fallback takes over (asserted at executor level elsewhere).
  EXPECT_FALSE(static_cast<bool>(k));
  EXPECT_EQ(ctr("fault.cache_enospc"), e0 + 1);

  // Nothing half-written survived to poison the cache: the next request
  // compiles and loads normally.
  const std::uint64_t c0 = ctr("jit.compiles");
  k = jit_kernel_for_def(2, bc);
  EXPECT_TRUE(static_cast<bool>(k));
  EXPECT_EQ(ctr("jit.compiles"), c0 + 1);
}

// ---------------------------------------------------------------------
// flock: two processes racing one kernel key compile exactly once.
// ---------------------------------------------------------------------

TEST_F(JitSandbox, TwoProcessesRacingOneKeyCompileOnce) {
  if (!toolchain()) GTEST_SKIP() << "no host compiler";
  const std::string dir = fresh_cache_dir("flock");
  const ir::Bytecode bc = ir::compile_bytecode(fivept());
  const std::string child_out = dir + "-child-report";
  const std::uint64_t c0 = ctr("jit.compiles");

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: race the parent for the same key on the shared disk cache.
    // (The memory cache is per-process and empty in both.) Report this
    // process's compile count through a file; _exit skips gtest/atexit.
    const JitKernel ck = jit_kernel_for_def(2, bc);
    const std::uint64_t mine = ctr("jit.compiles") - c0;
    std::ofstream os(child_out);
    os << mine << " " << (static_cast<bool>(ck) ? 1 : 0) << "\n";
    os.close();
    _exit(os.good() ? 0 : 1);
  }

  const JitKernel k = jit_kernel_for_def(2, bc);
  EXPECT_TRUE(static_cast<bool>(k));

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "child status " << status;

  std::ifstream is(child_out);
  std::uint64_t child_compiles = 99;
  int child_ok = 0;
  is >> child_compiles >> child_ok;
  ASSERT_TRUE(is.good() || is.eof());
  EXPECT_EQ(child_ok, 1);

  // The flock serializes the two compile attempts and the loser's
  // post-lock existence re-check turns it into a disk hit: exactly one
  // compile system-wide, both processes holding a working kernel.
  const std::uint64_t parent_compiles = ctr("jit.compiles") - c0;
  EXPECT_EQ(parent_compiles + child_compiles, 1u)
      << "parent " << parent_compiles << ", child " << child_compiles;

  // Exactly one .so (plus lock/log artifacts) landed in the cache.
  int sos = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    sos += e.path().extension() == ".so" ? 1 : 0;
  }
  EXPECT_EQ(sos, 1);
}

}  // namespace
}  // namespace polymg::codegen
