#include <gtest/gtest.h>

#include "polymg/codegen/emit_c.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/solvers/cycles.hpp"

namespace polymg::codegen {
namespace {

using opt::CompileOptions;
using opt::Variant;
using solvers::CycleConfig;

opt::CompiledPipeline plan(Variant v) {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 3;
  return opt::compile(solvers::build_cycle(cfg),
                      CompileOptions::for_variant(v, 2));
}

TEST(EmitC, Fig8ShapeForOptPlus) {
  const std::string code = emit_c(plan(Variant::OptPlus), "pipeline_Vcycle");
  EXPECT_NE(code.find("void pipeline_Vcycle("), std::string::npos);
  EXPECT_NE(code.find("pool_allocate"), std::string::npos);
  EXPECT_NE(code.find("pool_deallocate"), std::string::npos);
  EXPECT_NE(code.find("collapse(2)"), std::string::npos);
  EXPECT_NE(code.find("/* Scratchpads */"), std::string::npos);
  EXPECT_NE(code.find("#pragma omp parallel for"), std::string::npos);
}

TEST(EmitC, NaiveHasNoTilingOrPool) {
  const std::string code = emit_c(plan(Variant::Naive), "pipeline");
  EXPECT_EQ(code.find("collapse("), std::string::npos);
  EXPECT_EQ(code.find("pool_allocate"), std::string::npos);
  EXPECT_NE(code.find("malloc"), std::string::npos);
}

TEST(EmitC, DtileEmitsPhases) {
  const std::string code = emit_c(plan(Variant::DtileOptPlus), "pipeline");
  EXPECT_NE(code.find("phase 1"), std::string::npos);
  EXPECT_NE(code.find("phase 2"), std::string::npos);
  EXPECT_NE(code.find("split/diamond time tiling"), std::string::npos);
}

TEST(EmitC, ExpressionsRendered) {
  const std::string code = emit_c(plan(Variant::OptPlus), "pipeline");
  // The Jacobi smoother body mentions its inputs by name.
  EXPECT_NE(code.find("smooth_pre"), std::string::npos);
  EXPECT_NE(code.find("F("), std::string::npos);
}

TEST(EmitC, SchedEmitsOneTaskPerTileWithDepends) {
  const opt::CompiledPipeline cp = plan(Variant::OptPlus);
  ASSERT_FALSE(cp.sched.empty());
  const std::string code = emit_sched_c(cp, "pipeline_Vcycle");
  EXPECT_NE(code.find("void pipeline_Vcycle_sched(void)"), std::string::npos);
  // One parallel region; tasks carry explicit-edge and gate depends.
  EXPECT_EQ(code.find("#pragma omp parallel"),
            code.rfind("#pragma omp parallel"));
  EXPECT_NE(code.find("#pragma omp task depend(out: _tok[0])"),
            std::string::npos);
  EXPECT_NE(code.find("depend(in: _done["), std::string::npos);
  // One token definition per task and one sentinel per node.
  const std::string tok_decl =
      "char _tok[" + std::to_string(cp.sched.total_tasks) + "]";
  EXPECT_NE(code.find(tok_decl), std::string::npos);
  std::size_t tasks = 0;
  for (std::size_t at = code.find("depend(out: _tok["); at != std::string::npos;
       at = code.find("depend(out: _tok[", at + 1)) {
    ++tasks;
  }
  EXPECT_EQ(tasks, static_cast<std::size_t>(cp.sched.total_tasks));
}

TEST(EmitC, SchedEmitsTaskwaitAroundTimeTiledChains) {
  const opt::CompiledPipeline cp = plan(Variant::DtileOptPlus);
  ASSERT_FALSE(cp.sched.empty());
  bool has_collective = false;
  for (const auto& n : cp.sched.nodes) has_collective |= n.collective;
  ASSERT_TRUE(has_collective);
  const std::string code = emit_sched_c(cp, "p");
  EXPECT_NE(code.find("#pragma omp taskwait"), std::string::npos);
  EXPECT_NE(code.find("time_tiled_sweep_node_"), std::string::npos);
}

TEST(EmitC, GeneratedLocTracksComplexity) {
  CycleConfig v;
  v.ndim = 2;
  v.n = 63;
  v.levels = 3;
  CycleConfig w = v;
  w.kind = solvers::CycleKind::W;
  const int loc_v = generated_loc(opt::compile(
      solvers::build_cycle(v), CompileOptions::for_variant(Variant::OptPlus, 2)));
  const int loc_w = generated_loc(opt::compile(
      solvers::build_cycle(w), CompileOptions::for_variant(Variant::OptPlus, 2)));
  EXPECT_GT(loc_v, 100);
  EXPECT_GT(loc_w, loc_v);  // W-cycle pipelines generate more code
}

}  // namespace
}  // namespace polymg::codegen
