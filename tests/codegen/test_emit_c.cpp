#include <gtest/gtest.h>

#include "polymg/codegen/emit_c.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/solvers/cycles.hpp"

namespace polymg::codegen {
namespace {

using opt::CompileOptions;
using opt::Variant;
using solvers::CycleConfig;

opt::CompiledPipeline plan(Variant v) {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 3;
  return opt::compile(solvers::build_cycle(cfg),
                      CompileOptions::for_variant(v, 2));
}

TEST(EmitC, Fig8ShapeForOptPlus) {
  const std::string code = emit_c(plan(Variant::OptPlus), "pipeline_Vcycle");
  EXPECT_NE(code.find("void pipeline_Vcycle("), std::string::npos);
  EXPECT_NE(code.find("pool_allocate"), std::string::npos);
  EXPECT_NE(code.find("pool_deallocate"), std::string::npos);
  EXPECT_NE(code.find("collapse(2)"), std::string::npos);
  EXPECT_NE(code.find("/* Scratchpads */"), std::string::npos);
  EXPECT_NE(code.find("#pragma omp parallel for"), std::string::npos);
}

TEST(EmitC, NaiveHasNoTilingOrPool) {
  const std::string code = emit_c(plan(Variant::Naive), "pipeline");
  EXPECT_EQ(code.find("collapse("), std::string::npos);
  EXPECT_EQ(code.find("pool_allocate"), std::string::npos);
  EXPECT_NE(code.find("malloc"), std::string::npos);
}

TEST(EmitC, DtileEmitsPhases) {
  const std::string code = emit_c(plan(Variant::DtileOptPlus), "pipeline");
  EXPECT_NE(code.find("phase 1"), std::string::npos);
  EXPECT_NE(code.find("phase 2"), std::string::npos);
  EXPECT_NE(code.find("split/diamond time tiling"), std::string::npos);
}

TEST(EmitC, ExpressionsRendered) {
  const std::string code = emit_c(plan(Variant::OptPlus), "pipeline");
  // The Jacobi smoother body mentions its inputs by name.
  EXPECT_NE(code.find("smooth_pre"), std::string::npos);
  EXPECT_NE(code.find("F("), std::string::npos);
}

TEST(EmitC, GeneratedLocTracksComplexity) {
  CycleConfig v;
  v.ndim = 2;
  v.n = 63;
  v.levels = 3;
  CycleConfig w = v;
  w.kind = solvers::CycleKind::W;
  const int loc_v = generated_loc(opt::compile(
      solvers::build_cycle(v), CompileOptions::for_variant(Variant::OptPlus, 2)));
  const int loc_w = generated_loc(opt::compile(
      solvers::build_cycle(w), CompileOptions::for_variant(Variant::OptPlus, 2)));
  EXPECT_GT(loc_v, 100);
  EXPECT_GT(loc_w, loc_v);  // W-cycle pipelines generate more code
}

}  // namespace
}  // namespace polymg::codegen
