// Mixed-precision grid layer: float<->double view conversion round
// trips and the double-accumulation guarantee of the bulk norms.
#include <gtest/gtest.h>

#include <cmath>

#include "polymg/grid/ops.hpp"

namespace polymg {
namespace {

using grid::View;
using poly::Box;
using poly::index_t;

TEST(PrecisionViews, ExactValuesRoundTripBitExactly) {
  // Values exactly representable in binary32 survive F64 -> F32 -> F64
  // unchanged (promotion is exact for every float).
  const Box dom = Box::cube(2, 0, 9);
  grid::Buffer a = grid::make_grid(dom);
  grid::BufferF32 b = grid::make_grid_f32(dom);
  grid::Buffer c = grid::make_grid(dom);
  View av = View::over(a.data(), dom);
  View bv = View::over(b.data(), dom);
  View cv = View::over(c.data(), dom);
  ASSERT_EQ(bv.dtype, grid::DType::F32);
  grid::fill_region(av, dom, [](index_t i, index_t j, index_t) {
    return 1.0 + 0.5 * static_cast<double>(i) - 0.25 * static_cast<double>(j);
  });
  grid::copy_region(bv, av, dom);
  grid::copy_region(cv, bv, dom);
  EXPECT_EQ(grid::max_diff(av, cv, dom), 0.0);
}

TEST(PrecisionViews, InexactValuesRoundExactlyOnce) {
  // A value with no binary32 representation rounds once on store: the
  // round trip lands on (double)(float)x, not on some twice-rounded or
  // truncated variant.
  const Box dom = Box::cube(2, 0, 3);
  grid::BufferF32 b = grid::make_grid_f32(dom);
  View bv = View::over(b.data(), dom);
  const double x = 0.1;  // repeating fraction in binary
  bv.store_at({1, 1, 0}, x);
  const double back = bv.load_at({1, 1, 0});
  EXPECT_EQ(back, static_cast<double>(static_cast<float>(x)));
  EXPECT_NE(back, x);
}

TEST(PrecisionViews, L2NormAccumulatesDoubleOverFloatStorage) {
  // Fill a large float grid with a constant; the exact sum of squares is
  // n_pts * f^2 with f the once-rounded value. A float accumulator would
  // drift by far more than 1e-12 relative over ~1e6 terms; the norms
  // promise double accumulation regardless of storage dtype.
  const index_t n = 1023;
  const Box dom = Box::cube(2, 0, n + 1);
  grid::BufferF32 b = grid::make_grid_f32(dom);
  View bv = View::over(b.data(), dom);
  const Box interior = Box::cube(2, 1, n);
  grid::fill_region(bv, interior,
                    [](index_t, index_t, index_t) { return 0.001; });
  const double f = static_cast<double>(static_cast<float>(0.001));
  const double n_pts = static_cast<double>(n) * static_cast<double>(n);
  const double exact = std::sqrt(n_pts * f * f);
  // Double accumulation drifts by ~1e-11 relative over 1e6 terms; float
  // accumulation would be off by 1e-8 or (far) worse.
  EXPECT_NEAR(grid::l2_norm(bv, interior) / exact, 1.0, 1e-10);
}

TEST(PrecisionViews, AddRegionAccumulatesInDouble) {
  // dst (double) += src (float): the tiny float increment must land in
  // the double destination exactly — under float accumulation
  // 1.0 + 1e-9 collapses back to 1.0.
  const Box dom = Box::cube(2, 0, 5);
  grid::Buffer d = grid::make_grid(dom);
  grid::BufferF32 s = grid::make_grid_f32(dom);
  View dv = View::over(d.data(), dom);
  View sv = View::over(s.data(), dom);
  grid::fill_region(dv, dom, [](index_t, index_t, index_t) { return 1.0; });
  grid::fill_region(sv, dom, [](index_t, index_t, index_t) { return 1e-9; });
  grid::add_region(dv, sv, dom);
  const double inc = static_cast<double>(static_cast<float>(1e-9));
  EXPECT_EQ(dv.load_at({2, 2, 0}), 1.0 + inc);
  EXPECT_NE(dv.load_at({2, 2, 0}), 1.0);
}

TEST(PrecisionViews, MixedDtypeCopyNarrowsAndWidens) {
  // F64 -> F32 is the canonical demotion (one rounding), F32 -> F64 the
  // exact promotion; together max error is half a float ulp of the value.
  const Box dom = Box::cube(3, 0, 5);
  grid::Buffer a = grid::make_grid(dom);
  grid::BufferF32 b = grid::make_grid_f32(dom);
  View av = View::over(a.data(), dom);
  View bv = View::over(b.data(), dom);
  grid::fill_region(av, dom, [](index_t i, index_t j, index_t k) {
    return std::sin(static_cast<double>(i * 31 + j * 7 + k));
  });
  grid::copy_region(bv, av, dom);
  // |x - (float)x| <= ulp32(x)/2 <= |x| * 2^-24.
  EXPECT_LE(grid::max_diff(av, bv, dom), std::ldexp(1.0, -24));
}

}  // namespace
}  // namespace polymg
