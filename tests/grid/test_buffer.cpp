#include <gtest/gtest.h>

#include "polymg/grid/buffer.hpp"

namespace polymg::grid {
namespace {

TEST(Buffer, FillAndIndex) {
  Buffer b(100);
  b.fill(3.5);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(b[i], 3.5);
  b[7] = -1.0;
  EXPECT_EQ(b[7], -1.0);
}

TEST(Buffer, CloneIsDeep) {
  Buffer b(10);
  b.fill(1.0);
  Buffer c = b.clone();
  c[0] = 9.0;
  EXPECT_EQ(b[0], 1.0);
  EXPECT_EQ(c[0], 9.0);
  EXPECT_EQ(c.size(), 10u);
}

TEST(Buffer, MoveTransfersOwnership) {
  Buffer b(10);
  b.fill(2.0);
  double* p = b.data();
  Buffer c = std::move(b);
  EXPECT_EQ(c.data(), p);
  EXPECT_FALSE(b.allocated());  // NOLINT(bugprone-use-after-move)
}

}  // namespace
}  // namespace polymg::grid
