#include <gtest/gtest.h>

#include "polymg/grid/buffer.hpp"
#include "polymg/grid/view.hpp"

namespace polymg::grid {
namespace {

TEST(View, RowMajorLayout2d) {
  const Box box{{0, 3}, {0, 4}};  // 4 x 5
  Buffer b(static_cast<std::size_t>(box.count()));
  View v = View::over(b.data(), box);
  EXPECT_EQ(v.stride[0], 5);
  EXPECT_EQ(v.stride[1], 1);
  v.at2(2, 3) = 42.0;
  EXPECT_EQ(b[2 * 5 + 3], 42.0);
}

TEST(View, OffsetOrigin) {
  // A scratchpad view over a footprint box with non-zero lower corner.
  const Box box{{10, 13}, {20, 24}};
  Buffer b(static_cast<std::size_t>(box.count()));
  View v = View::over(b.data(), box);
  v.at2(10, 20) = 1.0;
  v.at2(13, 24) = 2.0;
  EXPECT_EQ(b[0], 1.0);
  EXPECT_EQ(b[box.count() - 1], 2.0);
}

TEST(View, ThreeDAndGenericAccessorAgree) {
  const Box box{{0, 2}, {1, 3}, {2, 5}};
  Buffer b(static_cast<std::size_t>(box.count()));
  View v = View::over(b.data(), box);
  v.at3(1, 2, 4) = 7.0;
  EXPECT_EQ(v.at({1, 2, 4}), 7.0);
  EXPECT_EQ(v.stride[2], 1);
  EXPECT_EQ(v.stride[1], 4);
  EXPECT_EQ(v.stride[0], 12);
}

}  // namespace
}  // namespace polymg::grid
