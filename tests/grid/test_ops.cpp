#include <gtest/gtest.h>

#include <cmath>

#include "polymg/grid/ops.hpp"

namespace polymg::grid {
namespace {

TEST(Ops, MakeGridZeroFilled) {
  const Box dom = Box::cube(2, 0, 9);
  Buffer b = make_grid(dom);
  EXPECT_EQ(b.size(), 100u);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], 0.0);
}

TEST(Ops, FillRegionAndNorms) {
  const Box dom = Box::cube(2, 0, 4);
  Buffer b = make_grid(dom);
  View v = View::over(b.data(), dom);
  fill_region(v, Box::cube(2, 1, 3), [](index_t i, index_t j, index_t) {
    return static_cast<double>(i * 10 + j);
  });
  EXPECT_EQ(v.at2(2, 3), 23.0);
  EXPECT_EQ(v.at2(0, 0), 0.0);  // outside region untouched
  EXPECT_EQ(max_norm(v, dom), 33.0);
  EXPECT_NEAR(l2_norm(v, Box{{1, 1}, {1, 2}}), std::sqrt(11. * 11 + 12 * 12),
              1e-12);
}

TEST(Ops, CopyAndDiff) {
  const Box dom = Box::cube(3, 0, 3);
  Buffer a = make_grid(dom), b = make_grid(dom);
  View va = View::over(a.data(), dom), vb = View::over(b.data(), dom);
  fill_region(va, dom, [](index_t i, index_t j, index_t k) {
    return static_cast<double>(i + j + k);
  });
  copy_region(vb, va, dom);
  EXPECT_EQ(max_diff(va, vb, dom), 0.0);
  vb.at3(1, 1, 1) += 0.5;
  EXPECT_EQ(max_diff(va, vb, dom), 0.5);
}

}  // namespace
}  // namespace polymg::grid
