// Kernel correctness: the fast tap-loop path must agree with the
// bytecode interpreter (and with hand-computed values) over every access
// shape multigrid produces — unit-scale stencils, ×2 restriction, ÷2
// parity interpolation — at randomized region alignments.
#include <gtest/gtest.h>

#include "polymg/common/rng.hpp"
#include "polymg/grid/ops.hpp"
#include "polymg/ir/stencil.hpp"
#include "polymg/runtime/kernels.hpp"

namespace polymg::runtime {
namespace {

using grid::Buffer;
using ir::Expr;
using ir::LoadIndex;

Buffer random_grid(const Box& dom, std::uint64_t seed) {
  Buffer b = grid::make_grid(dom);
  Rng rng(seed);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng.uniform(-1, 1);
  return b;
}

/// Run the same lowered definition through both execution paths and
/// compare.
void check_linear_vs_bytecode(const Expr& e, int ndim, const Box& src_dom,
                              const Box& out_region,
                              std::array<poly::index_t, 3> step = {1, 1, 1},
                              std::array<poly::index_t, 3> phase = {0, 0, 0}) {
  const auto lf = ir::try_linearize(e, ndim);
  ASSERT_TRUE(lf.has_value());
  const ir::Bytecode bc = ir::compile_bytecode(e);

  Buffer src = random_grid(src_dom, 42);
  Buffer out_a = grid::make_grid(out_region);
  Buffer out_b = grid::make_grid(out_region);
  const View sv = View::over(src.data(), src_dom);
  View va = View::over(out_a.data(), out_region);
  View vb = View::over(out_b.data(), out_region);
  const std::vector<View> srcs{sv};

  apply_linear(*lf, va, srcs, out_region, step, phase);
  apply_bytecode(bc, vb, srcs, out_region, step, phase);
  EXPECT_LE(grid::max_diff(va, vb, out_region), 1e-14);
}

TEST(Kernels, UnitScaleStencil2d) {
  ir::SourceRef v;
  v.slot = 0;
  v.ndim = 2;
  const Expr e =
      ir::stencil2(v, ir::five_point_laplacian_2d(), 0.25) + 1.5;
  check_linear_vs_bytecode(e, 2, Box::cube(2, 0, 33), Box::cube(2, 1, 32));
}

TEST(Kernels, UnitScaleStencil3d) {
  ir::SourceRef v;
  v.slot = 0;
  v.ndim = 3;
  const Expr e = ir::stencil3(v, ir::seven_point_laplacian_3d(), -0.5);
  check_linear_vs_bytecode(e, 3, Box::cube(3, 0, 17), Box::cube(3, 1, 16));
}

TEST(Kernels, RestrictScale2d) {
  ir::SourceRef v;
  v.slot = 0;
  v.ndim = 2;
  for (int d = 0; d < 2; ++d) v.num[d] = 2;
  const Expr e = ir::stencil2(v, ir::full_weighting_2d(), 1.0 / 16);
  check_linear_vs_bytecode(e, 2, Box::cube(2, 0, 33), Box::cube(2, 1, 15));
}

TEST(Kernels, InterpParityCases2d) {
  ir::SourceRef v;
  v.slot = 0;
  v.ndim = 2;
  for (int d = 0; d < 2; ++d) v.den[d] = 2;
  const Expr even_even = v.at(0, 0);
  const Expr odd_odd = ir::make_const(0.25) *
                       (v.at(0, 0) + v.at(0, 1) + v.at(1, 0) + v.at(1, 1));
  for (int pi = 0; pi < 2; ++pi) {
    for (int pj = 0; pj < 2; ++pj) {
      check_linear_vs_bytecode(pi || pj ? odd_odd : even_even, 2,
                               Box::cube(2, 0, 17), Box::cube(2, 1, 30),
                               {2, 2, 1}, {pi, pj, 0});
    }
  }
}

TEST(Kernels, OffsetOriginViews) {
  // Scratchpad-style views: origin away from zero.
  ir::SourceRef v;
  v.slot = 0;
  v.ndim = 2;
  const Expr e = ir::stencil2(v, ir::full_weighting_2d(), 1.0 / 16);
  const Box src_dom{{37, 80}, {91, 140}};
  const Box region{{40, 70}, {95, 130}};
  check_linear_vs_bytecode(e, 2, src_dom, region);
}

TEST(Kernels, HandComputedJacobiStep) {
  // One weighted-Jacobi step on a 3x3 interior with known values.
  const Box dom = Box::cube(2, 0, 4);
  Buffer v = grid::make_grid(dom), f = grid::make_grid(dom),
         out = grid::make_grid(dom);
  View vv = View::over(v.data(), dom);
  View fv = View::over(f.data(), dom);
  View ov = View::over(out.data(), dom);
  vv.at2(2, 2) = 1.0;  // single spike
  fv.at2(2, 2) = 2.0;

  ir::SourceRef sv, sf;
  sv.slot = 0;
  sv.ndim = 2;
  sf.slot = 1;
  sf.ndim = 2;
  const double w = 0.1, inv_h2 = 4.0;
  const Expr e = sv() - ir::make_const(w) *
                            (ir::stencil2(sv, ir::five_point_laplacian_2d(),
                                          inv_h2) -
                             sf());
  const auto lf = ir::try_linearize(e, 2);
  ASSERT_TRUE(lf.has_value());
  const std::vector<View> srcs{vv, fv};
  apply_linear(*lf, ov, srcs, Box::cube(2, 1, 3));
  // Center: 1 - w*(4*inv_h2*1 - 2) = 1 - 0.1*14 = -0.4.
  EXPECT_NEAR(ov.at2(2, 2), -0.4, 1e-15);
  // Neighbour (2,1): 0 - w*(-inv_h2*1 - 0) = 0.4.
  EXPECT_NEAR(ov.at2(2, 1), 0.4, 1e-15);
  // Corner (1,1): untouched by the spike's cross.
  EXPECT_NEAR(ov.at2(1, 1), 0.0, 1e-15);
}

TEST(Kernels, BoundarySlabDecomposition) {
  const Box region{{0, 9}, {0, 9}};
  const Box interior{{1, 8}, {1, 8}};
  poly::index_t covered = 0;
  std::vector<Box> slabs;
  for_each_boundary_slab(region, interior, [&](const Box& b) {
    covered += b.count();
    for (const Box& prev : slabs) {
      EXPECT_TRUE(poly::intersect(b, prev).empty());
    }
    EXPECT_TRUE(poly::intersect(b, interior).empty());
    slabs.push_back(b);
  });
  EXPECT_EQ(covered, region.count() - interior.count());
}

TEST(Kernels, BoundarySlabPartialRegion) {
  // A tile region that only touches the high boundary.
  const Box region{{5, 9}, {3, 7}};
  const Box interior{{1, 8}, {1, 8}};
  poly::index_t covered = 0;
  for_each_boundary_slab(region, interior,
                         [&](const Box& b) { covered += b.count(); });
  EXPECT_EQ(covered, 5);  // the row i == 9 strip
}

TEST(Kernels, ApplyStageWritesBoundaryRule) {
  // Zero boundary + interior stencil through apply_stage.
  const Box dom = Box::cube(2, 0, 9);
  Buffer in = random_grid(dom, 3), out = grid::make_grid(dom);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = 99.0;  // poison

  ir::FunctionDecl f;
  f.name = "s";
  f.ndim = 2;
  f.domain = dom;
  f.interior = Box::cube(2, 1, 8);
  f.boundary = ir::BoundaryKind::Zero;
  f.sources = {{true, 0}};
  ir::SourceRef sv;
  sv.slot = 0;
  sv.ndim = 2;
  f.defs = {ir::stencil2(sv, ir::full_weighting_2d(), 1.0 / 16)};
  f.finalize();
  const ir::LoweredFunc lw = ir::lower(f);

  View ov = View::over(out.data(), dom);
  const std::vector<View> srcs{View::over(in.data(), dom)};
  apply_stage(f, lw, ov, srcs, dom);
  EXPECT_EQ(ov.at2(0, 5), 0.0);
  EXPECT_EQ(ov.at2(9, 0), 0.0);
  EXPECT_NE(ov.at2(4, 4), 99.0);
}

}  // namespace
}  // namespace polymg::runtime
