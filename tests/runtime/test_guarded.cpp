// GuardedExecutor: bitwise-transparent when healthy, reference-plan
// fallback when the optimized path faults (pool exhaustion, poisoned
// kernel output, invalid plan), hard errors for caller bugs.
#include "polymg/runtime/guarded.hpp"

#include <gtest/gtest.h>

#include "polymg/common/fault.hpp"
#include "polymg/common/health.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/solvers/metrics.hpp"
#include "polymg/solvers/poisson.hpp"

namespace polymg::runtime {
namespace {

using opt::CompileOptions;
using opt::Variant;
using solvers::CycleConfig;
using solvers::PoissonProblem;

class GuardedExecutorTest : public ::testing::Test {
protected:
  void SetUp() override { fault::FaultInjector::instance().reset(); }
  void TearDown() override { fault::FaultInjector::instance().reset(); }
};

CycleConfig small2d() {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 3;
  return cfg;
}

TEST_F(GuardedExecutorTest, HealthyRunBitwiseMatchesPlainExecutor) {
  const CycleConfig cfg = small2d();
  const CompileOptions opts = CompileOptions::for_variant(Variant::OptPlus, 2);
  PoissonProblem pa = PoissonProblem::random_rhs(2, cfg.n, 17);
  PoissonProblem pb = PoissonProblem::random_rhs(2, cfg.n, 17);

  Executor plain(opt::compile(build_cycle(cfg), opts));
  GuardedExecutor guarded(build_cycle(cfg), opts);
  ASSERT_TRUE(guarded.has_optimized_plan());

  for (int c = 0; c < 3; ++c) {
    const std::vector<grid::View> ea = {pa.v_view(), pa.f_view()};
    plain.run(ea);
    grid::copy_region(pa.v_view(), plain.output_view(0), pa.domain());
    const std::vector<grid::View> eb = {pb.v_view(), pb.f_view()};
    guarded.run(eb);
    grid::copy_region(pb.v_view(), guarded.output_view(0), pb.domain());
    EXPECT_FALSE(guarded.last_run_fell_back());
    EXPECT_EQ(grid::max_diff(pa.v_view(), pb.v_view(), pa.domain()), 0.0)
        << "cycle " << c << " not bitwise identical";
  }
  EXPECT_EQ(guarded.report().optimized_runs, 3);
  EXPECT_EQ(guarded.report().fallback_runs, 0);
  EXPECT_FALSE(guarded.report().used_fallback);
}

TEST_F(GuardedExecutorTest, PoolExhaustionFallsBackToReferencePlan) {
  const CycleConfig cfg = small2d();
  PoissonProblem p = PoissonProblem::random_rhs(2, cfg.n, 5);
  GuardedExecutor guarded(build_cycle(cfg),
                          CompileOptions::for_variant(Variant::OptPlus, 2));

  fault::FaultInjector::instance().arm(fault::kPoolAlloc, 1);
  const std::vector<grid::View> ext = {p.v_view(), p.f_view()};
  guarded.run(ext);
  EXPECT_TRUE(guarded.last_run_fell_back());
  EXPECT_TRUE(guarded.report().used_fallback);
  EXPECT_EQ(guarded.report().last_error, ErrorCode::PoolExhausted);
  EXPECT_EQ(fault::FaultInjector::instance().fired(fault::kPoolAlloc), 1);

  // The fallback result is the true cycle result: compare against a
  // clean plain-executor run from the same inputs.
  PoissonProblem q = PoissonProblem::random_rhs(2, cfg.n, 5);
  Executor plain(opt::compile(build_cycle(cfg),
                              CompileOptions::for_variant(Variant::OptPlus, 2)));
  const std::vector<grid::View> eq = {q.v_view(), q.f_view()};
  plain.run(eq);
  EXPECT_EQ(grid::max_diff(guarded.output_view(0), plain.output_view(0),
                           p.domain()),
            0.0);

  // Fault consumed: the next run is optimized again.
  guarded.run(ext);
  EXPECT_FALSE(guarded.last_run_fell_back());
  EXPECT_EQ(guarded.report().optimized_runs, 1);
  EXPECT_EQ(guarded.report().fallback_runs, 1);
}

TEST_F(GuardedExecutorTest, PoisonedKernelOutputFallsBack) {
  const CycleConfig cfg = small2d();
  PoissonProblem p = PoissonProblem::random_rhs(2, cfg.n, 9);
  GuardedExecutor guarded(build_cycle(cfg),
                          CompileOptions::for_variant(Variant::OptPlus, 2));

  // Poison one group's output mid-pipeline: the optimized run completes
  // but its output scan sees the NaN and the guard re-runs on the
  // reference plan (the fault is consumed, so the re-run is clean).
  fault::FaultInjector::instance().arm(fault::kKernelOutput, 1);
  const std::vector<grid::View> ext = {p.v_view(), p.f_view()};
  guarded.run(ext);
  EXPECT_TRUE(guarded.last_run_fell_back());
  EXPECT_EQ(guarded.report().last_error, ErrorCode::NumericalDivergence);
  EXPECT_FALSE(
      health::has_nonfinite(guarded.output_view(0), p.domain()));
}

TEST_F(GuardedExecutorTest, PersistentPoisonThrowsNumericalDivergence) {
  const CycleConfig cfg = small2d();
  PoissonProblem p = PoissonProblem::random_rhs(2, cfg.n, 9);
  GuardedExecutor guarded(build_cycle(cfg),
                          CompileOptions::for_variant(Variant::OptPlus, 2));
  // Unbounded poisoning hits the reference plan too: nothing left to
  // fall back to, so the guard must report divergence, not return NaNs.
  fault::FaultInjector::instance().arm(fault::kKernelOutput, -1);
  const std::vector<grid::View> ext = {p.v_view(), p.f_view()};
  try {
    guarded.run(ext);
    FAIL() << "expected Error(NumericalDivergence)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::NumericalDivergence);
  }
}

TEST_F(GuardedExecutorTest, WrongExternalCountIsPreconditionViolation) {
  const CycleConfig cfg = small2d();
  PoissonProblem p = PoissonProblem::random_rhs(2, cfg.n, 1);
  GuardedExecutor guarded(build_cycle(cfg),
                          CompileOptions::for_variant(Variant::OptPlus, 2));
  const std::vector<grid::View> ext = {p.v_view()};  // f missing
  try {
    guarded.run(ext);
    FAIL() << "expected Error(PreconditionViolated)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::PreconditionViolated);
  }
}

TEST_F(GuardedExecutorTest, UndersizedExternalIsPreconditionViolation) {
  const CycleConfig cfg = small2d();
  PoissonProblem p = PoissonProblem::random_rhs(2, cfg.n, 1);
  GuardedExecutor guarded(build_cycle(cfg),
                          CompileOptions::for_variant(Variant::OptPlus, 2));
  // A view over a quarter-size domain cannot cover the finest grid.
  PoissonProblem small = PoissonProblem::random_rhs(2, (cfg.n + 1) / 2 - 1, 1);
  const std::vector<grid::View> ext = {small.v_view(), p.f_view()};
  EXPECT_THROW(guarded.run(ext), Error);
}

}  // namespace
}  // namespace polymg::runtime
