// Wavefront (time-skewed, line-buffered) smoothing must agree exactly
// with plain Jacobi sweeps for any step count and grid size.
#include <gtest/gtest.h>

#include "polymg/common/rng.hpp"
#include "polymg/grid/ops.hpp"
#include "polymg/runtime/wavefront.hpp"

namespace polymg::runtime {
namespace {

using grid::Buffer;

struct WfCase {
  int ndim;
  poly::index_t n;
  int T;
};

class WavefrontTest : public ::testing::TestWithParam<WfCase> {};

TEST_P(WavefrontTest, MatchesPlainSweeps) {
  const WfCase c = GetParam();
  const poly::Box dom = poly::Box::cube(c.ndim, 0, c.n + 1);
  const poly::Box interior = poly::Box::cube(c.ndim, 1, c.n);
  const double w = 0.11, inv_h2 = 9.0;

  Buffer f = grid::make_grid(dom);
  Buffer v0 = grid::make_grid(dom);
  Rng rng(c.n * 31 + c.T);
  grid::fill_region(grid::View::over(f.data(), dom), interior,
                    [&](auto, auto, auto) { return rng.uniform(-1, 1); });
  grid::fill_region(grid::View::over(v0.data(), dom), interior,
                    [&](auto, auto, auto) { return rng.uniform(-1, 1); });

  // Reference: plain ping-pong sweeps.
  Buffer a = v0.clone(), b = grid::make_grid(dom);
  View bufs[2] = {grid::View::over(a.data(), dom),
                  grid::View::over(b.data(), dom)};
  const View fv = grid::View::over(f.data(), dom);
  for (int t = 0; t < c.T; ++t) {
    View src = bufs[t & 1], dst = bufs[(t + 1) & 1];
    grid::fill_region(dst, interior, [&](auto i, auto j, auto k) {
      double av;
      if (c.ndim == 2) {
        av = inv_h2 * (4 * src.at2(i, j) - src.at2(i - 1, j) -
                       src.at2(i + 1, j) - src.at2(i, j - 1) -
                       src.at2(i, j + 1));
        return src.at2(i, j) - w * (av - fv.at2(i, j));
      }
      av = inv_h2 * (6 * src.at3(i, j, k) - src.at3(i - 1, j, k) -
                     src.at3(i + 1, j, k) - src.at3(i, j - 1, k) -
                     src.at3(i, j + 1, k) - src.at3(i, j, k - 1) -
                     src.at3(i, j, k + 1));
      return src.at3(i, j, k) - w * (av - fv.at3(i, j, k));
    });
  }
  const View expected = bufs[c.T & 1];

  // Wavefront.
  Buffer in = v0.clone();
  Buffer out = grid::make_grid(dom);
  wavefront_jacobi(grid::View::over(in.data(), dom),
                   grid::View::over(out.data(), dom), fv, c.n, c.ndim, w,
                   inv_h2, c.T);

  EXPECT_EQ(grid::max_diff(grid::View::over(out.data(), dom), expected,
                           interior),
            0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, WavefrontTest,
    ::testing::Values(WfCase{2, 16, 1}, WfCase{2, 16, 4}, WfCase{2, 33, 7},
                      WfCase{2, 8, 10},  // pipeline longer than the grid
                      WfCase{3, 8, 3}, WfCase{3, 12, 6}),
    [](const ::testing::TestParamInfo<WfCase>& info) {
      return std::to_string(info.param.ndim) + "D_n" +
             std::to_string(info.param.n) + "_T" +
             std::to_string(info.param.T);
    });

TEST(Wavefront, RejectsBadArguments) {
  const poly::Box dom = poly::Box::cube(2, 0, 9);
  Buffer a = grid::make_grid(dom), f = grid::make_grid(dom);
  const View av = grid::View::over(a.data(), dom);
  EXPECT_THROW(wavefront_jacobi(av, av, grid::View::over(f.data(), dom), 8,
                                2, 0.1, 1.0, 3),
               Error);  // aliasing
  Buffer b = grid::make_grid(dom);
  EXPECT_THROW(wavefront_jacobi(av, grid::View::over(b.data(), dom),
                                grid::View::over(f.data(), dom), 8, 2, 0.1,
                                1.0, 0),
               Error);  // zero steps
}

}  // namespace
}  // namespace polymg::runtime
