// Executor behaviour on small synthetic pipelines: memory lifecycle,
// output views, repeated invocation, and overlapped-tile execution on a
// pipeline with a live-out that has in-group consumers.
#include <gtest/gtest.h>

#include "polymg/common/rng.hpp"
#include "polymg/runtime/executor.hpp"
#include "polymg/solvers/cycles.hpp"
#include "polymg/solvers/poisson.hpp"

namespace polymg::runtime {
namespace {

using opt::CompileOptions;
using opt::Variant;
using solvers::CycleConfig;

CycleConfig small2d() {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 31;
  cfg.levels = 2;
  return cfg;
}

TEST(Executor, RepeatedRunsGiveIdenticalResults) {
  CycleConfig cfg = small2d();
  auto p = solvers::PoissonProblem::random_rhs(2, cfg.n, 5);
  Executor ex(opt::compile(solvers::build_cycle(cfg),
                           CompileOptions::for_variant(Variant::OptPlus, 2)));
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  ex.run(ext);
  grid::Buffer first = grid::make_grid(p.domain());
  grid::copy_region(grid::View::over(first.data(), p.domain()),
                    ex.output_view(0), p.domain());
  ex.run(ext);
  EXPECT_EQ(grid::max_diff(grid::View::over(first.data(), p.domain()),
                           ex.output_view(0), p.domain()),
            0.0);
}

TEST(Executor, PooledModeHasNoSteadyStateMallocs) {
  CycleConfig cfg = small2d();
  auto p = solvers::PoissonProblem::random_rhs(2, cfg.n, 6);
  Executor ex(opt::compile(solvers::build_cycle(cfg),
                           CompileOptions::for_variant(Variant::OptPlus, 2)));
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  ex.run(ext);
  const long mallocs_after_first = ex.pool().malloc_calls();
  for (int i = 0; i < 3; ++i) ex.run(ext);
  EXPECT_EQ(ex.pool().malloc_calls(), mallocs_after_first);
  EXPECT_GT(ex.pool().reuse_hits(), 0);
}

TEST(Executor, NonPooledModeUsesNoPool) {
  CycleConfig cfg = small2d();
  auto p = solvers::PoissonProblem::random_rhs(2, cfg.n, 7);
  Executor ex(opt::compile(solvers::build_cycle(cfg),
                           CompileOptions::for_variant(Variant::Opt, 2)));
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  ex.run(ext);
  EXPECT_EQ(ex.pool().malloc_calls(), 0);
}

TEST(Executor, PoolReleaseShrinksPeakFootprint) {
  CycleConfig cfg = small2d();
  cfg.n = 63;
  cfg.levels = 3;
  auto p = solvers::PoissonProblem::random_rhs(2, cfg.n, 8);
  const std::vector<View> ext = {p.v_view(), p.f_view()};

  // Pin the barrier schedule: pool-release-at-last-use peaks are defined
  // on in-order group execution. The dependence schedule overlaps up to
  // two schedule nodes, which keeps up to two groups' arrays live past
  // their barrier-schedule release point — a bounded, interleaving-
  // dependent cost that would make this assertion nondeterministic.
  CompileOptions no_reuse = CompileOptions::for_variant(Variant::Opt, 2);
  no_reuse.dependence_schedule = false;
  Executor ex_plain(opt::compile(solvers::build_cycle(cfg), no_reuse));
  ex_plain.run(ext);

  CompileOptions pooled = CompileOptions::for_variant(Variant::OptPlus, 2);
  pooled.dependence_schedule = false;
  Executor ex_pooled(opt::compile(solvers::build_cycle(cfg), pooled));
  ex_pooled.run(ext);

  EXPECT_LT(ex_pooled.peak_array_doubles(), ex_plain.peak_array_doubles());
}

TEST(Executor, RejectsWrongExternalCount) {
  CycleConfig cfg = small2d();
  auto p = solvers::PoissonProblem::random_rhs(2, cfg.n, 9);
  Executor ex(opt::compile(solvers::build_cycle(cfg),
                           CompileOptions::for_variant(Variant::Naive, 2)));
  const std::vector<View> ext = {p.v_view()};
  try {
    ex.run(ext);
    FAIL() << "expected Error(PreconditionViolated)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::PreconditionViolated);
  }
}

TEST(Executor, RejectsExternalViewNotCoveringItsDomain) {
  CycleConfig cfg = small2d();
  auto p = solvers::PoissonProblem::random_rhs(2, cfg.n, 9);
  Executor ex(opt::compile(solvers::build_cycle(cfg),
                           CompileOptions::for_variant(Variant::Naive, 2)));
  // A view over a smaller grid: its inner extent cannot span the
  // declared (n+2)^2 domain.
  auto small = solvers::PoissonProblem::random_rhs(2, (cfg.n + 1) / 2 - 1, 9);
  const std::vector<View> ext = {small.v_view(), p.f_view()};
  try {
    ex.run(ext);
    FAIL() << "expected Error(PreconditionViolated)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::PreconditionViolated);
  }
}

TEST(Executor, RejectsShiftedExternalView) {
  CycleConfig cfg = small2d();
  auto p = solvers::PoissonProblem::random_rhs(2, cfg.n, 9);
  Executor ex(opt::compile(solvers::build_cycle(cfg),
                           CompileOptions::for_variant(Variant::Naive, 2)));
  // Right size, wrong origin: the view starts at (1,1) so it cannot
  // address row 0 of the declared domain.
  const poly::Box shifted = poly::Box::cube(2, 1, cfg.n + 2);
  View bad = View::over(p.v.data(), shifted);
  const std::vector<View> ext = {bad, p.f_view()};
  EXPECT_THROW(ex.run(ext), Error);
}

TEST(Executor, TileSizeSweepAllAgree) {
  // Property sweep: many tile shapes, one result.
  CycleConfig cfg = small2d();
  cfg.n = 63;
  cfg.levels = 3;
  auto p = solvers::PoissonProblem::random_rhs(2, cfg.n, 10);
  const std::vector<View> ext = {p.v_view(), p.f_view()};

  Executor ref(opt::compile(solvers::build_cycle(cfg),
                            CompileOptions::for_variant(Variant::Naive, 2)));
  ref.run(ext);
  grid::Buffer expected = grid::make_grid(p.domain());
  grid::copy_region(grid::View::over(expected.data(), p.domain()),
                    ref.output_view(0), p.domain());

  for (poly::index_t t0 : {8, 16, 64}) {
    for (poly::index_t t1 : {16, 64, 128}) {
      CompileOptions opts = CompileOptions::for_variant(Variant::OptPlus, 2);
      opts.tile = {t0, t1, 0};
      Executor ex(opt::compile(solvers::build_cycle(cfg), opts));
      ex.run(ext);
      EXPECT_LE(grid::max_diff(grid::View::over(expected.data(), p.domain()),
                               ex.output_view(0), p.domain()),
                1e-13)
          << "tile " << t0 << "x" << t1;
    }
  }
}

}  // namespace
}  // namespace polymg::runtime
