// Randomized pipeline fuzzing: build random DAGs of stencil stages —
// random radii/weights, point-wise combinations of two producers,
// restrict (×2) and interp (÷2, parity-piecewise) edges, random boundary
// rules — and require that every optimizer variant and a sweep of tile
// shapes reproduce the naive execution exactly. This is the property the
// whole compiler rests on: schedule and storage choices must never
// change values.
#include <gtest/gtest.h>

#include "polymg/common/rng.hpp"
#include "polymg/grid/ops.hpp"
#include "polymg/ir/builder.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/opt/validate.hpp"
#include "polymg/runtime/executor.hpp"

namespace polymg::runtime {
namespace {

using ir::Expr;
using ir::FuncSpec;
using ir::Handle;
using ir::PipelineBuilder;
using ir::SourceRef;
using opt::CompileOptions;
using opt::Variant;
using poly::Box;

struct NodeInfo {
  Handle h;
  poly::index_t n;  // interior size of this stage's grid
};

/// Random weights with a given radius (zero-heavy so shapes vary).
ir::Weights2 random_weights2(Rng& rng, int radius) {
  const int m = 2 * radius + 1;
  ir::Weights2 w(static_cast<std::size_t>(m),
                 std::vector<double>(static_cast<std::size_t>(m), 0.0));
  bool any = false;
  for (auto& row : w) {
    for (double& x : row) {
      if (rng.next_double() < 0.5) {
        x = rng.uniform(-1.0, 1.0);
        any = any || x != 0.0;
      }
    }
  }
  if (!any) w[static_cast<std::size_t>(radius)][static_cast<std::size_t>(radius)] = 1.0;
  return w;
}

ir::Pipeline random_pipeline(std::uint64_t seed, poly::index_t n0,
                             int nstages) {
  Rng rng(seed);
  PipelineBuilder b(2);
  std::vector<NodeInfo> nodes;
  const Box dom0 = Box::cube(2, 0, n0 + 1);
  nodes.push_back({b.input("in0", dom0), n0});
  nodes.push_back({b.input("in1", dom0), n0});

  // A stage with read radius r must shrink its interior so footprints
  // stay inside the producers' (n+2)^2 domains; the widened ghost ring
  // takes the boundary rule.
  auto spec_for = [&](poly::index_t n, int id, ir::BoundaryKind bk,
                      poly::index_t radius = 1) {
    FuncSpec s;
    s.name = "s" + std::to_string(id);
    s.domain = Box::cube(2, 0, n + 1);
    s.interior = Box::cube(2, radius, n + 1 - radius);
    s.boundary = bk;
    return s;
  };

  for (int i = 0; i < nstages; ++i) {
    // Pick a random producer; same-size second producer for point-wise
    // combinations when available.
    const NodeInfo src = nodes[rng.below(nodes.size())];
    const ir::BoundaryKind bk = ir::BoundaryKind::Zero;
    const double kind = rng.next_double();
    Handle h;
    poly::index_t n = src.n;
    if (kind < 0.2 && src.n >= 15 && ((src.n + 1) % 2 == 0)) {
      // Restrict to the coarser grid.
      n = (src.n + 1) / 2 - 1;
      const ir::Weights2 w = random_weights2(rng, 1);
      h = b.define_restrict(spec_for(n, i, bk), {src.h},
                            [&](std::span<const SourceRef> s) {
                              return ir::stencil2(s[0], w,
                                                  rng.uniform(0.1, 1.0));
                            });
    } else if (kind < 0.4 && src.n <= n0 / 2) {
      // Interpolate to the finer grid (parity-piecewise).
      n = 2 * src.n + 1;
      h = b.define_interp(
          spec_for(n, i, bk), {src.h}, [&](std::span<const SourceRef> s) {
            std::vector<Expr> cases;
            for (int c = 0; c < 4; ++c) {
              Expr e = s[0].at(0, 0) * rng.uniform(0.2, 1.0);
              if (c & 1) e = e + s[0].at(0, 1) * rng.uniform(0.2, 1.0);
              if (c & 2) e = e + s[0].at(1, 0) * rng.uniform(0.2, 1.0);
              cases.push_back(e);
            }
            return cases;
          });
    } else if (kind < 0.6) {
      // Point-wise combination with another same-size node, if any.
      std::vector<NodeInfo> same;
      for (const NodeInfo& cand : nodes) {
        if (cand.n == src.n) same.push_back(cand);
      }
      const NodeInfo other = same[rng.below(same.size())];
      const double a = rng.uniform(-1, 1), c = rng.uniform(-1, 1);
      h = b.define(spec_for(n, i, bk), {src.h, other.h},
                   [&](std::span<const SourceRef> s) {
                     return a * s[0]() + c * s[1]() +
                            rng.uniform(-0.5, 0.5);
                   });
    } else {
      // Plain stencil of random radius (1 or 2).
      const int radius = rng.next_double() < 0.8 ? 1 : 2;
      const ir::Weights2 w = random_weights2(rng, radius);
      h = b.define(spec_for(n, i, bk, radius), {src.h},
                   [&](std::span<const SourceRef> s) {
                     return ir::stencil2(s[0], w, rng.uniform(0.2, 1.0));
                   });
    }
    nodes.push_back({h, n});
  }
  // Mark one or two of the last nodes as outputs.
  b.mark_output(nodes.back().h);
  if (nodes.size() > 4 && rng.next_double() < 0.5) {
    const NodeInfo& extra = nodes[nodes.size() - 2];
    if (!extra.h.external) b.mark_output(extra.h);
  }
  return b.build();
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, AllVariantsMatchNaive) {
  const std::uint64_t seed = GetParam();
  const poly::index_t n0 = 63;
  const ir::Pipeline proto = random_pipeline(seed, n0, 14);
  const std::size_t nouts = proto.outputs.size();

  // Random inputs (shared by all runs).
  Rng rng(seed ^ 0xabcdef);
  const Box dom0 = Box::cube(2, 0, n0 + 1);
  grid::Buffer in0 = grid::make_grid(dom0), in1 = grid::make_grid(dom0);
  for (std::size_t i = 0; i < in0.size(); ++i) in0[i] = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < in1.size(); ++i) in1[i] = rng.uniform(-1, 1);
  const std::vector<grid::View> ext = {grid::View::over(in0.data(), dom0),
                                       grid::View::over(in1.data(), dom0)};

  auto run = [&](Variant v, poly::TileSizes tile) {
    CompileOptions o = CompileOptions::for_variant(v, 2);
    o.tile = tile;
    opt::CompiledPipeline cp = opt::compile(random_pipeline(seed, n0, 14), o);
    // Every fuzzed plan must also satisfy the guarded-execution
    // invariants, not just reproduce the naive values.
    opt::validate_plan(cp);
    Executor ex(std::move(cp));
    ex.run(ext);
    std::vector<grid::Buffer> outs;
    for (std::size_t i = 0; i < nouts; ++i) {
      const grid::View ov = ex.output_view(static_cast<int>(i));
      const ir::FunctionDecl& f =
          ex.plan().pipe.funcs[ex.plan().pipe.outputs[i]];
      grid::Buffer out = grid::make_grid(f.domain);
      grid::copy_region(grid::View::over(out.data(), f.domain), ov,
                        f.domain);
      outs.push_back(std::move(out));
    }
    return outs;
  };

  const auto ref = run(Variant::Naive, {0, 0, 0});
  for (Variant v : {Variant::Opt, Variant::OptPlus}) {
    for (poly::TileSizes tile :
         {poly::TileSizes{8, 16, 0}, poly::TileSizes{32, 32, 0},
          poly::TileSizes{16, 128, 0}}) {
      const auto got = run(v, tile);
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(got[i].size(), ref[i].size());
        double diff = 0;
        for (std::size_t q = 0; q < ref[i].size(); ++q) {
          diff = std::max(diff, std::abs(got[i][q] - ref[i][q]));
        }
        EXPECT_LE(diff, 1e-12)
            << "seed " << seed << " variant " << opt::to_string(v)
            << " tile " << tile[0] << "x" << tile[1] << " output " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u, 11u, 12u));

}  // namespace
}  // namespace polymg::runtime
