// Register row engine properties: on every program the engine accepts it
// must be BIT-exact with the point-wise stack interpreter (the guarded
// reference oracle) — same CSE-shared subtrees evaluate the same ops in
// the same order — across randomized expressions, region alignments,
// (step, phase) parity lattices and ÷2/×2 sampled loads. Plus the
// executor-level payoffs the engine exists for: an allocation-free
// steady state and per-group/per-stage timing counters.
#include <gtest/gtest.h>

#include "polymg/common/alloc_hook.hpp"
#include "polymg/common/parallel.hpp"
#include "polymg/common/rng.hpp"
#include "polymg/grid/ops.hpp"
#include "polymg/ir/regprog.hpp"
#include "polymg/ir/stencil.hpp"
#include "polymg/opt/validate.hpp"
#include "polymg/runtime/executor.hpp"
#include "polymg/runtime/kernels.hpp"
#include "polymg/solvers/cycles.hpp"
#include "polymg/solvers/poisson.hpp"

namespace polymg::runtime {
namespace {

using grid::Buffer;
using ir::Expr;
using ir::LoadIndex;

Buffer random_grid(const Box& dom, std::uint64_t seed) {
  Buffer b = grid::make_grid(dom);
  Rng rng(seed);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng.uniform(-1, 1);
  return b;
}

/// Random load with per-dimension sampling drawn from the shapes
/// multigrid produces: identity, ×2 restriction, ÷2 interpolation, each
/// with a small offset.
Expr random_load(Rng& rng, int ndim, int nslots) {
  std::array<LoadIndex, ir::kMaxDims> idx{};
  for (int d = 0; d < ndim; ++d) {
    switch (rng.below(3)) {
      case 0:
        idx[d] = LoadIndex{1, 1, 0};
        break;
      case 1:
        idx[d] = LoadIndex{2, 1, 0};
        break;
      default:
        idx[d] = LoadIndex{1, 2, 0};
        break;
    }
    idx[d].off = static_cast<index_t>(rng.below(3)) - 1;
  }
  return ir::make_load(static_cast<int>(rng.below(nslots)), idx);
}

/// Random expression tree. Divisions keep a const-offset denominator so
/// values stay finite on random data; everything else is unconstrained.
Expr random_expr(Rng& rng, int ndim, int nslots, int depth) {
  if (depth == 0 || rng.below(4) == 0) {
    return rng.below(3) == 0 ? ir::make_const(rng.uniform(-2, 2))
                             : random_load(rng, ndim, nslots);
  }
  switch (rng.below(5)) {
    case 0:
      return random_expr(rng, ndim, nslots, depth - 1) +
             random_expr(rng, ndim, nslots, depth - 1);
    case 1:
      return random_expr(rng, ndim, nslots, depth - 1) -
             random_expr(rng, ndim, nslots, depth - 1);
    case 2:
      return random_expr(rng, ndim, nslots, depth - 1) *
             random_expr(rng, ndim, nslots, depth - 1);
    case 3:
      return -random_expr(rng, ndim, nslots, depth - 1);
    default:
      return random_expr(rng, ndim, nslots, depth - 1) /
             (random_load(rng, ndim, nslots) + 3.0);
  }
}

/// Evaluate `e` through the row engine and the stack interpreter over
/// `region` on the (step, phase) lattice and demand identical bits.
void check_engine_vs_interpreter(const Expr& e, int ndim, int nslots,
                                 const Box& src_dom, const Box& region,
                                 std::array<index_t, 3> step = {1, 1, 1},
                                 std::array<index_t, 3> phase = {0, 0, 0},
                                 std::uint64_t seed = 42) {
  const ir::Bytecode bc = ir::compile_bytecode(e);
  const ir::RegProgram rp = ir::compile_regprog(bc);
  ASSERT_TRUE(ir::regprog_fits_engine(rp));
  ASSERT_TRUE(ir::regprog_issues(rp, nslots).empty());

  std::vector<Buffer> src_bufs;
  std::vector<View> srcs;
  for (int s = 0; s < nslots; ++s) {
    src_bufs.push_back(random_grid(src_dom, seed + static_cast<std::uint64_t>(s)));
    srcs.push_back(View::over(src_bufs.back().data(), src_dom));
  }
  Buffer out_a = grid::make_grid(region);
  Buffer out_b = grid::make_grid(region);
  View va = View::over(out_a.data(), region);
  View vb = View::over(out_b.data(), region);

  apply_regprog(rp, va, srcs, region, step, phase);
  apply_bytecode(bc, vb, srcs, region, step, phase);
  EXPECT_EQ(grid::max_diff(va, vb, region), 0.0);
}

TEST(RegEngine, RandomExpressionsBitExact2d) {
  Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    const Expr e = random_expr(rng, 2, 2, 4);
    // Random region alignment, including rows far shorter than a batch.
    const index_t lo = static_cast<index_t>(rng.below(5));
    const index_t hi = lo + 1 + static_cast<index_t>(rng.below(29));
    check_engine_vs_interpreter(e, 2, 2, Box::cube(2, -3, 2 * hi + 3),
                                Box::cube(2, lo, hi), {1, 1, 1}, {0, 0, 0},
                                1000 + trial);
  }
}

TEST(RegEngine, RandomExpressionsBitExact3d) {
  Rng rng(777);
  for (int trial = 0; trial < 15; ++trial) {
    const Expr e = random_expr(rng, 3, 2, 3);
    check_engine_vs_interpreter(e, 3, 2, Box::cube(3, -3, 27),
                                Box::cube(3, 1, 12), {1, 1, 1}, {0, 0, 0},
                                2000 + trial);
  }
}

TEST(RegEngine, ParityLatticesBitExact) {
  // Every (step, phase) parity case of a ÷2-sampled non-linear update —
  // the interpolation shape, made engine-only by a load·load product.
  Rng rng(31337);
  for (int trial = 0; trial < 10; ++trial) {
    const Expr e = random_expr(rng, 2, 2, 3);
    for (int pi = 0; pi < 2; ++pi) {
      for (int pj = 0; pj < 2; ++pj) {
        check_engine_vs_interpreter(e, 2, 2, Box::cube(2, -3, 67),
                                    Box::cube(2, 1, 30), {2, 2, 1},
                                    {pi, pj, 0}, 3000 + trial);
      }
    }
  }
}

TEST(RegEngine, OffsetOriginViewsBitExact) {
  // Scratchpad-style views with origins away from zero.
  ir::SourceRef u, c;
  u.slot = 0;
  u.ndim = 2;
  c.slot = 1;
  c.ndim = 2;
  const Expr e =
      c() * ir::stencil2(u, ir::five_point_laplacian_2d(), 0.25) +
      0.5 * u.at(0, 0);
  const Box src_dom{{37, 80}, {91, 140}};
  const Box region{{40, 70}, {95, 130}};
  check_engine_vs_interpreter(e, 2, 2, src_dom, region);
}

solvers::CycleConfig small2d() {
  solvers::CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 31;
  cfg.levels = 2;
  return cfg;
}

TEST(RegEngine, ExecutorSteadyStateIsAllocationFree) {
  // After warm-up, a pooled OptPlus executor must run whole cycles
  // without a single operator-new anywhere in the process: bindings,
  // tile regions and scratch views are all precomputed at plan time.
  // Single-threaded so OpenMP's own lazy pool setup can't trip the
  // counter.
  const int threads_before = max_threads();
  set_num_threads(1);
  {
    auto p = solvers::PoissonProblem::random_rhs(2, small2d().n, 11);
    Executor ex(opt::compile(
        solvers::build_cycle(small2d()),
        opt::CompileOptions::for_variant(opt::Variant::OptPlus, 2)));
    const std::vector<View> ext = {p.v_view(), p.f_view()};
    ex.run(ext);
    ex.run(ext);  // warmed: pool primed, lazy runtime state settled

    const std::uint64_t before = polymg::allocation_count();
    ex.run(ext);
    EXPECT_EQ(polymg::allocation_count(), before);
  }
  set_num_threads(threads_before);
}

TEST(RegEngine, ExecutorTimersAccumulate) {
  auto p = solvers::PoissonProblem::random_rhs(2, small2d().n, 12);
  Executor ex(opt::compile(
      solvers::build_cycle(small2d()),
      opt::CompileOptions::for_variant(opt::Variant::OptPlus, 2)));
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  EXPECT_EQ(ex.runs_timed(), 0);
  ex.run(ext);
  ex.run(ext);
  EXPECT_EQ(ex.runs_timed(), 2);

  double total_group = 0.0;
  for (double s : ex.group_seconds()) {
    EXPECT_GE(s, 0.0);
    total_group += s;
  }
  EXPECT_GT(total_group, 0.0);
  double total_stage = 0.0;
  for (double s : ex.stage_seconds()) {
    EXPECT_GE(s, 0.0);
    total_stage += s;
  }
  EXPECT_GT(total_stage, 0.0);

  ex.reset_timers();
  EXPECT_EQ(ex.runs_timed(), 0);
  for (double s : ex.group_seconds()) EXPECT_EQ(s, 0.0);
}

TEST(RegEngine, CachedTileRegionsSurviveValidationAndMatchFallback) {
  // The plan-time kernel-instance cache must agree with on-the-fly
  // derivation: a compiled OptPlus plan carries non-empty caches, passes
  // validate_plan, and executes identically to the same plan with the
  // caches stripped (forcing the executor's recompute fallback).
  auto p = solvers::PoissonProblem::random_rhs(2, small2d().n, 13);
  const std::vector<View> ext = {p.v_view(), p.f_view()};

  opt::CompiledPipeline cached = opt::compile(
      solvers::build_cycle(small2d()),
      opt::CompileOptions::for_variant(opt::Variant::OptPlus, 2));
  bool has_cache = false;
  for (const auto& g : cached.groups) {
    has_cache = has_cache || !g.tile_regions_cache.empty();
  }
  ASSERT_TRUE(has_cache);
  EXPECT_NO_THROW(opt::validate_plan(cached));

  opt::CompiledPipeline stripped = opt::compile(
      solvers::build_cycle(small2d()),
      opt::CompileOptions::for_variant(opt::Variant::OptPlus, 2));
  for (auto& g : stripped.groups) g.tile_regions_cache.clear();

  Executor ex_cached(std::move(cached));
  Executor ex_stripped(std::move(stripped));
  ex_cached.run(ext);
  ex_stripped.run(ext);
  EXPECT_EQ(grid::max_diff(ex_cached.output_view(0), ex_stripped.output_view(0),
                           p.domain()),
            0.0);
}

}  // namespace
}  // namespace polymg::runtime
