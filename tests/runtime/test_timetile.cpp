// Split/diamond time tiling must reproduce plain Jacobi sweeps exactly
// for any (steps, H, W, n) combination — this is the property the whole
// dtile/handopt+pluto comparison rests on.
#include <gtest/gtest.h>

#include "polymg/common/rng.hpp"
#include "polymg/grid/ops.hpp"
#include "polymg/ir/builder.hpp"
#include "polymg/runtime/timetile.hpp"

namespace polymg::runtime {
namespace {

using grid::Buffer;

struct SweepCase {
  int ndim;
  poly::index_t n;
  int steps;
  poly::index_t H, W;
};

class TimeTileTest : public ::testing::TestWithParam<SweepCase> {};

ir::Pipeline smoother_pipeline(int ndim, poly::index_t n, double w,
                               double inv_h2) {
  ir::PipelineBuilder b(ndim);
  const poly::Box dom = poly::Box::cube(ndim, 0, n + 1);
  ir::Handle v = b.input("v", dom);
  ir::Handle f = b.input("f", dom);
  ir::FuncSpec spec;
  spec.name = "sm";
  spec.domain = dom;
  spec.interior = poly::Box::cube(ndim, 1, n);
  ir::Handle out = b.define_tstencil(
      spec, v, {f}, 1, [&](std::span<const ir::SourceRef> s) {
        const ir::Expr stencil =
            ndim == 2 ? ir::stencil2(s[0], ir::five_point_laplacian_2d(),
                                     inv_h2)
                      : ir::stencil3(s[0], ir::seven_point_laplacian_3d(),
                                     inv_h2);
        return s[0]() - ir::make_const(w) * (stencil - s[1]());
      });
  b.mark_output(out);
  return b.build();
}

TEST_P(TimeTileTest, MatchesPlainSweeps) {
  const SweepCase c = GetParam();
  const poly::Box dom = poly::Box::cube(c.ndim, 0, c.n + 1);
  const ir::Pipeline pipe = smoother_pipeline(c.ndim, c.n, 0.15, 4.0);
  const ir::FunctionDecl& step = pipe.funcs[0];
  const ir::LoweredFunc lw = ir::lower(step);

  Buffer f = grid::make_grid(dom);
  Buffer v0 = grid::make_grid(dom);
  Rng rng(c.n * 1000 + c.steps);
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = rng.uniform(-1, 1);
  grid::fill_region(grid::View::over(v0.data(), dom),
                    poly::Box::cube(c.ndim, 1, c.n),
                    [&](auto, auto, auto) { return rng.uniform(-1, 1); });

  auto run = [&](bool tiled) {
    Buffer a = v0.clone();
    Buffer b = v0.clone();  // ghost ring matches v0 in both buffers
    View bufs[2] = {grid::View::over(a.data(), dom),
                    grid::View::over(b.data(), dom)};
    std::vector<View> srcs{View{}, grid::View::over(f.data(), dom)};
    const std::vector<ChainStep> chain(static_cast<std::size_t>(c.steps),
                                       ChainStep{&step, &lw});
    if (tiled) {
      time_tiled_sweep(chain, bufs, srcs, {c.H, c.W});
    } else {
      plain_sweep(chain, bufs, srcs);
    }
    Buffer out = grid::make_grid(dom);
    grid::copy_region(grid::View::over(out.data(), dom),
                      bufs[c.steps & 1], dom);
    return out;
  };

  Buffer plain = run(false);
  Buffer tiled = run(true);
  EXPECT_EQ(grid::max_diff(grid::View::over(plain.data(), dom),
                           grid::View::over(tiled.data(), dom), dom),
            0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, TimeTileTest,
    ::testing::Values(SweepCase{2, 32, 1, 4, 8},    // single step
                      SweepCase{2, 32, 4, 4, 8},    // exact blocks
                      SweepCase{2, 33, 7, 3, 9},    // ragged last block
                      SweepCase{2, 32, 10, 4, 32},  // one block only
                      SweepCase{2, 8, 5, 4, 8},     // tiny grid
                      SweepCase{2, 64, 10, 5, 16},
                      SweepCase{3, 12, 6, 2, 6},
                      SweepCase{3, 16, 10, 4, 8}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      const SweepCase& c = info.param;
      return std::to_string(c.ndim) + "D_n" + std::to_string(c.n) + "_T" +
             std::to_string(c.steps) + "_H" + std::to_string(c.H) + "_W" +
             std::to_string(c.W);
    });

TEST(TimeTile, ScheduleAdvancesEveryRowOncePerStep) {
  // Property: for any configuration, each (row, step) pair is produced
  // exactly once, and only after its dependencies.
  for (poly::index_t n : {16, 33, 65}) {
    for (int steps : {1, 5, 8}) {
      for (poly::index_t H : {2, 4}) {
        for (poly::index_t W : {8, 16}) {
          std::vector<std::vector<int>> produced(
              static_cast<std::size_t>(n + 2), std::vector<int>(steps, 0));
          split_tile_schedule(1, n, steps, {H, W},
                              [&](int t, poly::index_t lo, poly::index_t hi) {
                                for (poly::index_t r = lo; r <= hi; ++r) {
                                  produced[static_cast<std::size_t>(r)]
                                          [t] += 1;
                                }
                              });
          for (poly::index_t r = 1; r <= n; ++r) {
            for (int t = 0; t < steps; ++t) {
              EXPECT_EQ(produced[static_cast<std::size_t>(r)][t], 1)
                  << "row " << r << " step " << t << " n=" << n
                  << " T=" << steps << " H=" << H << " W=" << W;
            }
          }
        }
      }
    }
  }
}

TEST(TimeTile, RejectsWideSelfDependence) {
  // A radius-2 self access must be refused.
  ir::PipelineBuilder b(2);
  const poly::Box dom = poly::Box::cube(2, 0, 17);
  ir::Handle v = b.input("v", dom);
  ir::FuncSpec spec;
  spec.name = "wide";
  spec.domain = dom;
  spec.interior = poly::Box::cube(2, 2, 15);
  ir::Handle out = b.define_tstencil(
      spec, v, {}, 1, [&](std::span<const ir::SourceRef> s) {
        return s[0].at(-2, 0) + s[0].at(2, 0);
      });
  b.mark_output(out);
  const ir::Pipeline pipe = b.build();
  const ir::LoweredFunc lw = ir::lower(pipe.funcs[0]);
  grid::Buffer a = grid::make_grid(dom), bb = grid::make_grid(dom);
  View bufs[2] = {grid::View::over(a.data(), dom),
                  grid::View::over(bb.data(), dom)};
  std::vector<View> srcs{View{}};
  const std::vector<ChainStep> chain(2, ChainStep{&pipe.funcs[0], &lw});
  EXPECT_THROW(time_tiled_sweep(chain, bufs, srcs, {2, 8}), Error);
}

}  // namespace
}  // namespace polymg::runtime
