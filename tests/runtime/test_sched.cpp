// Persistent-team dependence scheduler: schedule selection, bit-exact
// results across schedules and thread counts, and the one-parallel-
// region-per-run() invariant the fork/join elimination exists for.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "polymg/common/parallel.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/runtime/executor.hpp"
#include "polymg/solvers/cycles.hpp"
#include "polymg/solvers/poisson.hpp"

namespace polymg::runtime {
namespace {

using opt::CompileOptions;
using opt::Variant;
using solvers::CycleConfig;
using solvers::CycleKind;

CycleConfig w2d() {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 3;
  cfg.kind = CycleKind::W;
  return cfg;
}

/// Compile + run one cycle at `nthreads` and return the raw output bits.
std::vector<double> run_bits(const CycleConfig& cfg, CompileOptions o,
                             int nthreads) {
  const int prev = max_threads();
  set_num_threads(nthreads);
  auto p = solvers::PoissonProblem::random_rhs(cfg.ndim, cfg.n, 21);
  Executor ex(opt::compile(solvers::build_cycle(cfg), o));
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  ex.run(ext);
  const View out = ex.output_view(0);
  const int func = ex.plan().pipe.outputs[0];
  const index_t count = ex.plan().pipe.funcs[func].domain.count();
  std::vector<double> bits(static_cast<std::size_t>(count));
  std::memcpy(bits.data(), out.ptr, sizeof(double) * bits.size());
  set_num_threads(prev);
  return bits;
}

TEST(Sched, DependenceScheduleSelection) {
  const CycleConfig cfg = w2d();
  auto p = solvers::PoissonProblem::random_rhs(2, cfg.n, 5);
  // Optimized variants carry a graph and run the persistent-team
  // schedule; Naive (and the guarded reference oracle, which reuses its
  // options) keeps per-group fork/join.
  for (Variant v : {Variant::Opt, Variant::OptPlus, Variant::DtileOptPlus}) {
    Executor ex(opt::compile(solvers::build_cycle(cfg),
                             CompileOptions::for_variant(v, 2)));
    EXPECT_TRUE(ex.dependence_scheduled())
        << "variant " << opt::to_string(v);
    EXPECT_FALSE(ex.plan().sched.empty());
  }
  Executor naive(opt::compile(solvers::build_cycle(cfg),
                              CompileOptions::for_variant(Variant::Naive, 2)));
  EXPECT_FALSE(naive.dependence_scheduled());
  EXPECT_TRUE(naive.plan().sched.empty());
}

TEST(Sched, BitExactAcrossSchedules) {
  // Same variant, same problem: barrier vs dependence schedule must give
  // byte-identical outputs (tasks never share a written point and the
  // executor performs no cross-point reductions).
  for (Variant v : {Variant::Opt, Variant::OptPlus, Variant::DtileOptPlus}) {
    for (CycleKind kind : {CycleKind::V, CycleKind::W}) {
      CycleConfig cfg = w2d();
      cfg.kind = kind;
      CompileOptions dep = CompileOptions::for_variant(v, 2);
      CompileOptions barrier = dep;
      barrier.dependence_schedule = false;
      const std::vector<double> a = run_bits(cfg, dep, max_threads());
      const std::vector<double> b = run_bits(cfg, barrier, max_threads());
      ASSERT_EQ(a.size(), b.size());
      EXPECT_EQ(0, std::memcmp(a.data(), b.data(), sizeof(double) * a.size()))
          << "variant " << opt::to_string(v) << " kind "
          << static_cast<int>(kind);
    }
  }
}

TEST(Sched, BitExactAcrossThreadCounts) {
  // OMP_NUM_THREADS ∈ {1, 2, 4}: the dependence schedule's task shapes
  // are fixed at plan time, so the partition — and therefore every
  // computed bit — cannot depend on the team size.
  for (Variant v : {Variant::OptPlus, Variant::DtileOptPlus}) {
    const CompileOptions o = CompileOptions::for_variant(v, 2);
    const std::vector<double> ref = run_bits(w2d(), o, 1);
    for (int threads : {2, 4}) {
      const std::vector<double> got = run_bits(w2d(), o, threads);
      ASSERT_EQ(ref.size(), got.size());
      EXPECT_EQ(0,
                std::memcmp(ref.data(), got.data(), sizeof(double) * ref.size()))
          << "variant " << opt::to_string(v) << " threads " << threads;
    }
  }
}

TEST(Sched, ExactlyOneParallelRegionPerRun) {
  const CycleConfig cfg = w2d();
  auto p = solvers::PoissonProblem::random_rhs(2, cfg.n, 9);
  Executor ex(opt::compile(solvers::build_cycle(cfg),
                           CompileOptions::for_variant(Variant::OptPlus, 2)));
  ASSERT_TRUE(ex.dependence_scheduled());
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  // Cold run: array allocation happens inside the region (first-touch
  // stays serial there), so even the first invocation opens exactly one.
  std::uint64_t before = parallel_regions_entered();
  ex.run(ext);
  EXPECT_EQ(parallel_regions_entered() - before, 1u);
  // Steady state.
  for (int i = 0; i < 3; ++i) {
    before = parallel_regions_entered();
    ex.run(ext);
    EXPECT_EQ(parallel_regions_entered() - before, 1u);
  }
  // The barrier schedule by contrast forks per group/stage.
  CompileOptions barrier = CompileOptions::for_variant(Variant::OptPlus, 2);
  barrier.dependence_schedule = false;
  Executor exb(opt::compile(solvers::build_cycle(cfg), barrier));
  before = parallel_regions_entered();
  exb.run(ext);
  EXPECT_GT(parallel_regions_entered() - before, 1u);
}

TEST(Sched, RepeatedDependenceRunsAreIdentical) {
  const CycleConfig cfg = w2d();
  auto p = solvers::PoissonProblem::random_rhs(2, cfg.n, 13);
  Executor ex(opt::compile(solvers::build_cycle(cfg),
                           CompileOptions::for_variant(Variant::OptPlus, 2)));
  ASSERT_TRUE(ex.dependence_scheduled());
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  ex.run(ext);
  const int func = ex.plan().pipe.outputs[0];
  const index_t count = ex.plan().pipe.funcs[func].domain.count();
  std::vector<double> first(static_cast<std::size_t>(count));
  std::memcpy(first.data(), ex.output_view(0).ptr,
              sizeof(double) * first.size());
  for (int i = 0; i < 3; ++i) {
    ex.run(ext);
    EXPECT_EQ(0, std::memcmp(first.data(), ex.output_view(0).ptr,
                             sizeof(double) * first.size()));
  }
}

TEST(Sched, TimersAccumulateUnderDependenceSchedule) {
  const CycleConfig cfg = w2d();
  auto p = solvers::PoissonProblem::random_rhs(2, cfg.n, 17);
  Executor ex(opt::compile(solvers::build_cycle(cfg),
                           CompileOptions::for_variant(Variant::OptPlus, 2)));
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  ex.run(ext);
  EXPECT_EQ(ex.runs_timed(), 1);
  double total = 0.0;
  for (double s : ex.group_seconds()) total += s;
  EXPECT_GT(total, 0.0);
}

TEST(Sched, ResetTimersClearsEveryAccumulator) {
  const CycleConfig cfg = w2d();
  auto p = solvers::PoissonProblem::random_rhs(2, cfg.n, 19);
  Executor ex(opt::compile(solvers::build_cycle(cfg),
                           CompileOptions::for_variant(Variant::OptPlus, 2)));
  ASSERT_TRUE(ex.dependence_scheduled());
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  ex.run(ext);
  ex.run(ext);
  ASSERT_EQ(ex.runs_timed(), 2);
  ASSERT_GT(ex.queue_pops(), 0);

  ex.reset_timers();
  EXPECT_EQ(ex.runs_timed(), 0);
  EXPECT_EQ(ex.queue_pops(), 0);
  EXPECT_EQ(ex.queue_spins(), 0);
  for (double s : ex.group_seconds()) EXPECT_EQ(s, 0.0);
  for (double s : ex.stage_seconds()) EXPECT_EQ(s, 0.0);

  // The accumulators start fresh: one more run attributes exactly one
  // run's worth of time (the regression was stale per-thread node timers
  // surviving the reset and double-counting into the next fold).
  ex.run(ext);
  EXPECT_EQ(ex.runs_timed(), 1);
  double total = 0.0;
  for (double s : ex.group_seconds()) total += s;
  EXPECT_GT(total, 0.0);
  const double after_one = total;
  ex.reset_timers();
  ex.run(ext);
  double total2 = 0.0;
  for (double s : ex.group_seconds()) total2 += s;
  // Same problem, same plan: one run after a reset must not accumulate
  // materially more than a single run did (10x headroom for timer noise).
  EXPECT_LT(total2, 10.0 * after_one + 1.0);
}

}  // namespace
}  // namespace polymg::runtime
