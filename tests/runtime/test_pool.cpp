#include <gtest/gtest.h>

#include "polymg/runtime/pool.hpp"

namespace polymg::runtime {
namespace {

TEST(Pool, ReusesFreedBuffer) {
  MemoryPool pool;
  double* a = pool.pool_allocate(100);
  pool.pool_deallocate(a);
  double* b = pool.pool_allocate(80);  // fits in the freed 100
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.malloc_calls(), 1);
  EXPECT_EQ(pool.reuse_hits(), 1);
}

TEST(Pool, TooSmallBufferNotReused) {
  MemoryPool pool;
  double* a = pool.pool_allocate(50);
  pool.pool_deallocate(a);
  double* b = pool.pool_allocate(100);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.malloc_calls(), 2);
}

TEST(Pool, TightestFitPreferred) {
  MemoryPool pool;
  double* big = pool.pool_allocate(1000);
  double* small = pool.pool_allocate(100);
  pool.pool_deallocate(big);
  pool.pool_deallocate(small);
  EXPECT_EQ(pool.pool_allocate(90), small);
  EXPECT_EQ(pool.pool_allocate(90), big);  // small now taken
}

TEST(Pool, DoubleFreeAndUnknownPointerThrow) {
  MemoryPool pool;
  double* a = pool.pool_allocate(10);
  pool.pool_deallocate(a);
  EXPECT_THROW(pool.pool_deallocate(a), Error);
  double x;
  EXPECT_THROW(pool.pool_deallocate(&x), Error);
}

TEST(Pool, SteadyStateHasNoMallocTraffic) {
  MemoryPool pool;
  // Simulate repeated multigrid cycles with identical allocation patterns.
  for (int cycle = 0; cycle < 5; ++cycle) {
    double* a = pool.pool_allocate(64 * 64);
    double* b = pool.pool_allocate(32 * 32);
    double* c = pool.pool_allocate(64 * 64);
    pool.pool_deallocate(b);
    pool.pool_deallocate(a);
    pool.pool_deallocate(c);
  }
  EXPECT_EQ(pool.malloc_calls(), 3);  // first cycle only
  EXPECT_EQ(pool.live_buffers(), 0);
  EXPECT_EQ(pool.total_buffers(), 3);
}

TEST(Pool, ClearReleasesEverything) {
  MemoryPool pool;
  (void)pool.pool_allocate(10);
  pool.clear();
  EXPECT_EQ(pool.total_buffers(), 0);
  EXPECT_EQ(pool.total_doubles(), 0);
}

}  // namespace
}  // namespace polymg::runtime
