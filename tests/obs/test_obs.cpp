// polymg::obs — trace sink, metrics registry and the Chrome exporter.
//
// The contract under test: tracing captures typed per-tile events from
// both schedules in valid Chrome trace_event JSON; the ring wraps by
// dropping oldest events (counted, never growing); and with no session
// active an instrumented steady-state run stays zero-alloc and bit-exact
// with a traced one.
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "polymg/common/alloc_hook.hpp"
#include "polymg/common/parallel.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/obs/report.hpp"
#include "polymg/obs/trace.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/runtime/executor.hpp"
#include "polymg/solvers/cycles.hpp"
#include "polymg/solvers/poisson.hpp"

namespace polymg::obs {
namespace {

using grid::View;
using opt::CompileOptions;
using opt::Variant;
using runtime::Executor;
using solvers::CycleConfig;
using solvers::CycleKind;

// ---------------------------------------------------------------------
// Minimal JSON validator (no dependency): checks the exporter's output
// is well-formed JSON, not merely that a few substrings appear.
// ---------------------------------------------------------------------

class JsonScanner {
public:
  explicit JsonScanner(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------

class ObsTest : public ::testing::Test {
protected:
  void TearDown() override {
    if (TraceSession::active()) TraceSession::stop();
  }
};

CycleConfig w2d() {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 3;
  cfg.kind = CycleKind::W;
  return cfg;
}

std::vector<double> output_bits(const Executor& ex) {
  const int func = ex.plan().pipe.outputs[0];
  const auto count = ex.plan().pipe.funcs[func].domain.count();
  std::vector<double> bits(static_cast<std::size_t>(count));
  std::memcpy(bits.data(), ex.output_view(0).ptr,
              sizeof(double) * bits.size());
  return bits;
}

int count_kind(const std::vector<TraceEvent>& evs, EventKind k) {
  int n = 0;
  for (const TraceEvent& e : evs) n += e.kind == k ? 1 : 0;
  return n;
}

TEST_F(ObsTest, RingWrapsByDroppingOldest) {
  TraceSession::start(/*events_per_thread=*/8);
  for (int i = 0; i < 20; ++i) {
    trace_instant(EventKind::GateOpen, -1, -1, i, 0.0);
  }
  TraceSession::stop();
  const std::vector<TraceEvent> evs = TraceSession::snapshot();
  ASSERT_EQ(evs.size(), 8u);
  EXPECT_EQ(TraceSession::dropped(), 12u);
  // Oldest-first within the ring: the 8 newest events, in record order.
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].id, 12 + static_cast<int>(i));
  }
}

TEST_F(ObsTest, RestartDiscardsPriorSession) {
  TraceSession::start(8);
  trace_instant(EventKind::GateOpen, -1, -1, 1, 0.0);
  TraceSession::start(8);
  trace_instant(EventKind::GateOpen, -1, -1, 2, 0.0);
  TraceSession::stop();
  const std::vector<TraceEvent> evs = TraceSession::snapshot();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].id, 2);
  EXPECT_EQ(TraceSession::dropped(), 0u);
}

TEST_F(ObsTest, BothSchedulesEmitPerTileEvents) {
#if defined(POLYMG_TRACE_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out (POLYMG_TRACING=OFF)";
#endif
  auto p = solvers::PoissonProblem::random_rhs(2, w2d().n, 7);
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  for (bool dependence : {false, true}) {
    CompileOptions o = CompileOptions::for_variant(Variant::OptPlus, 2);
    o.dependence_schedule = dependence;
    Executor ex(opt::compile(solvers::build_cycle(w2d()), o));
    ASSERT_EQ(ex.dependence_scheduled(), dependence);
    TraceSession::start();
    ex.run(ext);
    TraceSession::stop();
    const std::vector<TraceEvent> evs = TraceSession::snapshot();
    EXPECT_GT(count_kind(evs, EventKind::TileExec), 0)
        << (dependence ? "dependence" : "barrier");
    EXPECT_GT(count_kind(evs, EventKind::PoolAlloc), 0);
    if (!dependence) {
      EXPECT_GT(count_kind(evs, EventKind::GroupExec), 0);
    } else {
      EXPECT_GT(count_kind(evs, EventKind::GateOpen), 0);
      EXPECT_GT(count_kind(evs, EventKind::NodeRetire), 0);
    }
    // Spans measure real durations within the session.
    for (const TraceEvent& e : evs) {
      EXPECT_GE(e.ts_ns, 0);
      EXPECT_GE(e.dur_ns, 0);
    }
  }
}

TEST_F(ObsTest, PerThreadEventsAreOrdered) {
#if defined(POLYMG_TRACE_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out (POLYMG_TRACING=OFF)";
#endif
  const int threads_before = max_threads();
  set_num_threads(2);
  auto p = solvers::PoissonProblem::random_rhs(2, w2d().n, 11);
  Executor ex(opt::compile(solvers::build_cycle(w2d()),
                           CompileOptions::for_variant(Variant::OptPlus, 2)));
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  TraceSession::start();
  ex.run(ext);
  TraceSession::stop();
  set_num_threads(threads_before);
  const std::vector<TraceEvent> evs = TraceSession::snapshot();
  ASSERT_FALSE(evs.empty());
  // snapshot() concatenates whole rings in thread-id order...
  int max_tid_seen = -1;
  bool new_thread_block = true;
  for (const TraceEvent& e : evs) {
    if (static_cast<int>(e.tid) != max_tid_seen) {
      EXPECT_GT(static_cast<int>(e.tid), max_tid_seen)
          << "thread blocks must not interleave";
      max_tid_seen = static_cast<int>(e.tid);
      new_thread_block = true;
    }
    (void)new_thread_block;
  }
  // ...and within one thread, same-kind tile events carry non-decreasing
  // start stamps (each thread executes its tiles sequentially).
  std::int64_t last_ts[2] = {-1, -1};
  for (const TraceEvent& e : evs) {
    if (e.kind != EventKind::TileExec || e.tid > 1) continue;
    EXPECT_GE(e.ts_ns, last_ts[e.tid]);
    last_ts[e.tid] = e.ts_ns;
  }
}

TEST_F(ObsTest, ChromeTraceExportIsValidJson) {
#if defined(POLYMG_TRACE_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out (POLYMG_TRACING=OFF)";
#endif
  auto p = solvers::PoissonProblem::random_rhs(2, w2d().n, 3);
  Executor ex(opt::compile(solvers::build_cycle(w2d()),
                           CompileOptions::for_variant(Variant::OptPlus, 2)));
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  TraceSession::start();
  ex.run(ext);
  TraceSession::stop();
  std::ostringstream os;
  write_chrome_trace(os, TraceSession::snapshot(), "polymg-test");
  const std::string json = os.str();

  JsonScanner scanner(json);
  EXPECT_TRUE(scanner.valid()) << json.substr(0, 400);
  // Chrome trace_event "JSON Object Format" essentials.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos)
      << "missing process/thread metadata events";
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos)
      << "missing complete (span) events";
  EXPECT_NE(json.find("\"name\": \"tile\""), std::string::npos);
  EXPECT_NE(json.find("\"polymg-test\""), std::string::npos);
}

TEST_F(ObsTest, DisabledTracingIsZeroAllocAndBitExact) {
  auto p = solvers::PoissonProblem::random_rhs(2, w2d().n, 21);
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  Executor ex(opt::compile(solvers::build_cycle(w2d()),
                           CompileOptions::for_variant(Variant::OptPlus, 2)));
  ex.run(ext);
  ex.run(ext);  // warmed: pool primed, lazy runtime state settled

  // With no session, the instrumented executor keeps its steady-state
  // zero-allocation guarantee...
  const std::uint64_t before = polymg::allocation_count();
  ex.run(ext);
  EXPECT_EQ(polymg::allocation_count(), before);
  const std::vector<double> untraced = output_bits(ex);

  // ...and tracing the identical invocation changes no output bit.
  TraceSession::start();
  ex.run(ext);
  TraceSession::stop();
  const std::vector<double> traced = output_bits(ex);
  ASSERT_EQ(untraced.size(), traced.size());
  EXPECT_EQ(0, std::memcmp(untraced.data(), traced.data(),
                           sizeof(double) * untraced.size()));
#if !defined(POLYMG_TRACE_DISABLED)
  EXPECT_GT(TraceSession::snapshot().size(), 0u);
#endif
}

TEST_F(ObsTest, MetricsCountersAndGauges) {
  Metrics& m = Metrics::instance();
  Counter& c = m.counter("test.obs.counter");
  Gauge& g = m.gauge("test.obs.gauge");
  c.reset();
  g.reset();

  c.add(3);
  c.add();
  EXPECT_EQ(c.value(), 4);
  g.add(100);
  g.add(-40);
  g.add(10);
  EXPECT_EQ(g.value(), 70);
  EXPECT_EQ(g.peak(), 100);

  // Handles are stable: the same name resolves to the same object.
  EXPECT_EQ(&m.counter("test.obs.counter"), &c);
  EXPECT_EQ(&m.gauge("test.obs.gauge"), &g);

  const std::string json = m.snapshot_json();
  JsonScanner scanner(json);
  EXPECT_TRUE(scanner.valid()) << json;
  EXPECT_NE(json.find("\"test.obs.counter\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.obs.gauge\""), std::string::npos);

  c.reset();
  g.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.peak(), 0);
}

TEST_F(ObsTest, ExecutorFeedsMetricsRegistry) {
  Metrics& m = Metrics::instance();
  auto p = solvers::PoissonProblem::random_rhs(2, w2d().n, 31);
  Executor ex(opt::compile(solvers::build_cycle(w2d()),
                           CompileOptions::for_variant(Variant::OptPlus, 2)));
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  const std::int64_t tiles0 = m.counter("executor.tiles").value();
  const std::int64_t runs0 = m.counter("executor.runs").value();
  ex.run(ext);
  ex.run(ext);
  EXPECT_GT(m.counter("executor.tiles").value(), tiles0);
  EXPECT_EQ(m.counter("executor.runs").value(), runs0 + 2);
  EXPECT_GT(m.gauge("pool.bytes_live").peak(), 0);
}

TEST_F(ObsTest, RunReportRendersAttributionAndMetrics) {
  auto p = solvers::PoissonProblem::random_rhs(2, w2d().n, 41);
  Executor ex(opt::compile(solvers::build_cycle(w2d()),
                           CompileOptions::for_variant(Variant::OptPlus, 2)));
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  ex.run(ext);
  RunReport rr = ex.run_report();
  rr.title = "test report";
  EXPECT_EQ(rr.runs, 1);
  ASSERT_EQ(rr.groups.size(), ex.plan().groups.size());
  double total = 0.0;
  for (const auto& row : rr.groups) total += row.seconds;
  EXPECT_GT(total, 0.0);
  const std::string text = rr.render();
  EXPECT_NE(text.find("test report"), std::string::npos);
  EXPECT_NE(text.find("g0"), std::string::npos);
  EXPECT_NE(text.find("executor.tiles"), std::string::npos)
      << "metrics snapshot missing from the report";
}

}  // namespace
}  // namespace polymg::obs
