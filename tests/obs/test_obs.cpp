// polymg::obs — trace sink, metrics registry and the Chrome exporter.
//
// The contract under test: tracing captures typed per-tile events from
// both schedules in valid Chrome trace_event JSON; the ring wraps by
// dropping oldest events (counted, never growing); with no session
// active an instrumented steady-state run stays zero-alloc and bit-exact
// with a traced one; histogram quantiles stay within one bucket width of
// the exact order statistics under concurrent recording; the request
// span context rides through both schedules; and the Prometheus
// exposition (text format and scrape endpoint) round-trips the registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "polymg/common/alloc_hook.hpp"
#include "polymg/common/parallel.hpp"
#include "polymg/common/rng.hpp"
#include "polymg/obs/exposition.hpp"
#include "polymg/obs/histogram.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/obs/perf.hpp"
#include "polymg/obs/report.hpp"
#include "polymg/obs/trace.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/runtime/executor.hpp"
#include "polymg/solvers/cycles.hpp"
#include "polymg/solvers/poisson.hpp"

namespace polymg::obs {
namespace {

using grid::View;
using opt::CompileOptions;
using opt::Variant;
using runtime::Executor;
using solvers::CycleConfig;
using solvers::CycleKind;

// ---------------------------------------------------------------------
// Minimal JSON validator (no dependency): checks the exporter's output
// is well-formed JSON, not merely that a few substrings appear.
// ---------------------------------------------------------------------

class JsonScanner {
public:
  explicit JsonScanner(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------

class ObsTest : public ::testing::Test {
protected:
  void TearDown() override {
    if (TraceSession::active()) TraceSession::stop();
  }
};

CycleConfig w2d() {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 3;
  cfg.kind = CycleKind::W;
  return cfg;
}

std::vector<double> output_bits(const Executor& ex) {
  const int func = ex.plan().pipe.outputs[0];
  const auto count = ex.plan().pipe.funcs[func].domain.count();
  std::vector<double> bits(static_cast<std::size_t>(count));
  std::memcpy(bits.data(), ex.output_view(0).ptr,
              sizeof(double) * bits.size());
  return bits;
}

int count_kind(const std::vector<TraceEvent>& evs, EventKind k) {
  int n = 0;
  for (const TraceEvent& e : evs) n += e.kind == k ? 1 : 0;
  return n;
}

TEST_F(ObsTest, RingWrapsByDroppingOldest) {
  TraceSession::start(/*events_per_thread=*/8);
  for (int i = 0; i < 20; ++i) {
    trace_instant(EventKind::GateOpen, -1, -1, i, 0.0);
  }
  TraceSession::stop();
  const std::vector<TraceEvent> evs = TraceSession::snapshot();
  ASSERT_EQ(evs.size(), 8u);
  EXPECT_EQ(TraceSession::dropped(), 12u);
  // Oldest-first within the ring: the 8 newest events, in record order.
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].id, 12 + static_cast<int>(i));
  }
}

TEST_F(ObsTest, RestartDiscardsPriorSession) {
  TraceSession::start(8);
  trace_instant(EventKind::GateOpen, -1, -1, 1, 0.0);
  TraceSession::start(8);
  trace_instant(EventKind::GateOpen, -1, -1, 2, 0.0);
  TraceSession::stop();
  const std::vector<TraceEvent> evs = TraceSession::snapshot();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].id, 2);
  EXPECT_EQ(TraceSession::dropped(), 0u);
}

TEST_F(ObsTest, BothSchedulesEmitPerTileEvents) {
#if defined(POLYMG_TRACE_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out (POLYMG_TRACING=OFF)";
#endif
  auto p = solvers::PoissonProblem::random_rhs(2, w2d().n, 7);
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  for (bool dependence : {false, true}) {
    CompileOptions o = CompileOptions::for_variant(Variant::OptPlus, 2);
    o.dependence_schedule = dependence;
    Executor ex(opt::compile(solvers::build_cycle(w2d()), o));
    ASSERT_EQ(ex.dependence_scheduled(), dependence);
    TraceSession::start();
    ex.run(ext);
    TraceSession::stop();
    const std::vector<TraceEvent> evs = TraceSession::snapshot();
    EXPECT_GT(count_kind(evs, EventKind::TileExec), 0)
        << (dependence ? "dependence" : "barrier");
    EXPECT_GT(count_kind(evs, EventKind::PoolAlloc), 0);
    if (!dependence) {
      EXPECT_GT(count_kind(evs, EventKind::GroupExec), 0);
    } else {
      EXPECT_GT(count_kind(evs, EventKind::GateOpen), 0);
      EXPECT_GT(count_kind(evs, EventKind::NodeRetire), 0);
    }
    // Spans measure real durations within the session.
    for (const TraceEvent& e : evs) {
      EXPECT_GE(e.ts_ns, 0);
      EXPECT_GE(e.dur_ns, 0);
    }
  }
}

TEST_F(ObsTest, PerThreadEventsAreOrdered) {
#if defined(POLYMG_TRACE_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out (POLYMG_TRACING=OFF)";
#endif
  const int threads_before = max_threads();
  set_num_threads(2);
  auto p = solvers::PoissonProblem::random_rhs(2, w2d().n, 11);
  Executor ex(opt::compile(solvers::build_cycle(w2d()),
                           CompileOptions::for_variant(Variant::OptPlus, 2)));
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  TraceSession::start();
  ex.run(ext);
  TraceSession::stop();
  set_num_threads(threads_before);
  const std::vector<TraceEvent> evs = TraceSession::snapshot();
  ASSERT_FALSE(evs.empty());
  // snapshot() concatenates whole rings in thread-id order...
  int max_tid_seen = -1;
  bool new_thread_block = true;
  for (const TraceEvent& e : evs) {
    if (static_cast<int>(e.tid) != max_tid_seen) {
      EXPECT_GT(static_cast<int>(e.tid), max_tid_seen)
          << "thread blocks must not interleave";
      max_tid_seen = static_cast<int>(e.tid);
      new_thread_block = true;
    }
    (void)new_thread_block;
  }
  // ...and within one thread, same-kind tile events carry non-decreasing
  // start stamps (each thread executes its tiles sequentially).
  std::int64_t last_ts[2] = {-1, -1};
  for (const TraceEvent& e : evs) {
    if (e.kind != EventKind::TileExec || e.tid > 1) continue;
    EXPECT_GE(e.ts_ns, last_ts[e.tid]);
    last_ts[e.tid] = e.ts_ns;
  }
}

TEST_F(ObsTest, ChromeTraceExportIsValidJson) {
#if defined(POLYMG_TRACE_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out (POLYMG_TRACING=OFF)";
#endif
  auto p = solvers::PoissonProblem::random_rhs(2, w2d().n, 3);
  Executor ex(opt::compile(solvers::build_cycle(w2d()),
                           CompileOptions::for_variant(Variant::OptPlus, 2)));
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  TraceSession::start();
  ex.run(ext);
  TraceSession::stop();
  std::ostringstream os;
  write_chrome_trace(os, TraceSession::snapshot(), "polymg-test");
  const std::string json = os.str();

  JsonScanner scanner(json);
  EXPECT_TRUE(scanner.valid()) << json.substr(0, 400);
  // Chrome trace_event "JSON Object Format" essentials.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos)
      << "missing process/thread metadata events";
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos)
      << "missing complete (span) events";
  EXPECT_NE(json.find("\"name\": \"tile\""), std::string::npos);
  EXPECT_NE(json.find("\"polymg-test\""), std::string::npos);
}

TEST_F(ObsTest, DisabledTracingIsZeroAllocAndBitExact) {
  auto p = solvers::PoissonProblem::random_rhs(2, w2d().n, 21);
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  Executor ex(opt::compile(solvers::build_cycle(w2d()),
                           CompileOptions::for_variant(Variant::OptPlus, 2)));
  ex.run(ext);
  ex.run(ext);  // warmed: pool primed, lazy runtime state settled

  // With no session, the instrumented executor keeps its steady-state
  // zero-allocation guarantee...
  const std::uint64_t before = polymg::allocation_count();
  ex.run(ext);
  EXPECT_EQ(polymg::allocation_count(), before);
  const std::vector<double> untraced = output_bits(ex);

  // ...and tracing the identical invocation changes no output bit.
  TraceSession::start();
  ex.run(ext);
  TraceSession::stop();
  const std::vector<double> traced = output_bits(ex);
  ASSERT_EQ(untraced.size(), traced.size());
  EXPECT_EQ(0, std::memcmp(untraced.data(), traced.data(),
                           sizeof(double) * untraced.size()));
#if !defined(POLYMG_TRACE_DISABLED)
  EXPECT_GT(TraceSession::snapshot().size(), 0u);
#endif
}

TEST_F(ObsTest, MetricsCountersAndGauges) {
  Metrics& m = Metrics::instance();
  Counter& c = m.counter("test.obs.counter");
  Gauge& g = m.gauge("test.obs.gauge");
  c.reset();
  g.reset();

  c.add(3);
  c.add();
  EXPECT_EQ(c.value(), 4);
  g.add(100);
  g.add(-40);
  g.add(10);
  EXPECT_EQ(g.value(), 70);
  EXPECT_EQ(g.peak(), 100);

  // Handles are stable: the same name resolves to the same object.
  EXPECT_EQ(&m.counter("test.obs.counter"), &c);
  EXPECT_EQ(&m.gauge("test.obs.gauge"), &g);

  const std::string json = m.snapshot_json();
  JsonScanner scanner(json);
  EXPECT_TRUE(scanner.valid()) << json;
  EXPECT_NE(json.find("\"test.obs.counter\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.obs.gauge\""), std::string::npos);

  c.reset();
  g.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.peak(), 0);
}

TEST_F(ObsTest, ExecutorFeedsMetricsRegistry) {
  Metrics& m = Metrics::instance();
  auto p = solvers::PoissonProblem::random_rhs(2, w2d().n, 31);
  Executor ex(opt::compile(solvers::build_cycle(w2d()),
                           CompileOptions::for_variant(Variant::OptPlus, 2)));
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  const std::int64_t tiles0 = m.counter("executor.tiles").value();
  const std::int64_t runs0 = m.counter("executor.runs").value();
  ex.run(ext);
  ex.run(ext);
  EXPECT_GT(m.counter("executor.tiles").value(), tiles0);
  EXPECT_EQ(m.counter("executor.runs").value(), runs0 + 2);
  EXPECT_GT(m.gauge("pool.bytes_live").peak(), 0);
}

TEST_F(ObsTest, RunReportRendersAttributionAndMetrics) {
  auto p = solvers::PoissonProblem::random_rhs(2, w2d().n, 41);
  Executor ex(opt::compile(solvers::build_cycle(w2d()),
                           CompileOptions::for_variant(Variant::OptPlus, 2)));
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  ex.run(ext);
  RunReport rr = ex.run_report();
  rr.title = "test report";
  EXPECT_EQ(rr.runs, 1);
  ASSERT_EQ(rr.groups.size(), ex.plan().groups.size());
  double total = 0.0;
  for (const auto& row : rr.groups) total += row.seconds;
  EXPECT_GT(total, 0.0);
  const std::string text = rr.render();
  EXPECT_NE(text.find("test report"), std::string::npos);
  EXPECT_NE(text.find("g0"), std::string::npos);
  EXPECT_NE(text.find("executor.tiles"), std::string::npos)
      << "metrics snapshot missing from the report";
}

// ---------------------------------------------------------------------
// Histograms.
// ---------------------------------------------------------------------

TEST_F(ObsTest, HistogramBucketIndexIsMonotoneAndBracketing) {
  // Small values land in exact unit buckets...
  for (std::int64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), static_cast<int>(v));
    EXPECT_EQ(Histogram::bucket_lower(Histogram::bucket_index(v)), v);
  }
  // ...and across a wide sweep the index is monotone non-decreasing and
  // every value sits inside its bucket's [lower, upper] bounds.
  int last_ix = -1;
  for (std::int64_t v = 0; v < (std::int64_t{1} << 40); v = v * 2 + 3) {
    const int ix = Histogram::bucket_index(v);
    EXPECT_GE(ix, last_ix) << "v=" << v;
    last_ix = ix;
    EXPECT_LE(Histogram::bucket_lower(ix), v) << "v=" << v;
    EXPECT_GE(Histogram::bucket_upper(ix), v) << "v=" << v;
  }
  // Negative observations clamp to the zero bucket rather than indexing
  // out of bounds.
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.quantile(0.5), 0);
}

TEST_F(ObsTest, HistogramQuantilesWithinOneBucketUnderConcurrentRecording) {
  // Deterministic heavy-tailed samples, recorded from four threads at
  // once; every quantile read back must sit within the width of the
  // bucket that holds the exact nearest-rank order statistic.
  const std::size_t kN = 50000;
  std::vector<std::int64_t> samples;
  samples.reserve(kN);
  Rng rng(0x15eed);
  for (std::size_t i = 0; i < kN; ++i) {
    double z = -6.0;
    for (int k = 0; k < 12; ++k) z += rng.next_double();
    samples.push_back(static_cast<std::int64_t>(std::exp(10.0 + 1.3 * z)));
  }
  Histogram h;
  std::vector<std::thread> threads;
  const int kThreads = 4;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::size_t lo = kN * static_cast<std::size_t>(t) / kThreads;
      const std::size_t hi =
          kN * static_cast<std::size_t>(t + 1) / kThreads;
      for (std::size_t i = lo; i < hi; ++i) h.record(samples[i]);
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(h.count(), static_cast<std::int64_t>(kN))
      << "concurrent records lost";

  std::vector<std::int64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(kN)));
    rank = std::min(std::max<std::size_t>(rank, 1), kN);
    const std::int64_t exact = sorted[rank - 1];
    EXPECT_LE(std::llabs(h.quantile(q) - exact),
              h.quantile_bucket_width(q))
        << "q=" << q;
  }
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
}

TEST_F(ObsTest, HistogramRecordIsZeroAlloc) {
  Metrics& m = Metrics::instance();
  Histogram& h = m.histogram("test.obs.zeroalloc_hist");
  h.reset();
  const std::uint64_t before = polymg::allocation_count();
  for (int i = 0; i < 1000; ++i) h.record(i * 37);
  EXPECT_EQ(polymg::allocation_count(), before);
  EXPECT_EQ(h.count(), 1000);
  // Handles are stable like counters and gauges.
  EXPECT_EQ(&m.histogram("test.obs.zeroalloc_hist"), &h);
}

// ---------------------------------------------------------------------
// Exposition: snapshot_json hygiene and the Prometheus text format.
// ---------------------------------------------------------------------

TEST_F(ObsTest, SnapshotJsonEscapesAndSortsNames) {
  Metrics& m = Metrics::instance();
  // Tenant-derived names can carry arbitrary bytes: quotes, backslashes
  // and control characters must not corrupt the JSON document.
  m.counter("test.we\"ird\\na\tme").add(7);
  m.counter("test.aaa_first").add(1);
  const std::string json = m.snapshot_json();
  JsonScanner scanner(json);
  EXPECT_TRUE(scanner.valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("test.we\\\"ird\\\\na\\tme"), std::string::npos)
      << json.substr(0, 400);
  // Sorted stable order: "test.aaa_first" precedes the weird name.
  EXPECT_LT(json.find("test.aaa_first"), json.find("test.we"));
}

TEST_F(ObsTest, PrometheusTextExposition) {
  Metrics& m = Metrics::instance();
  m.counter("test.prom.counter").reset();
  m.counter("test.prom.counter").add(5);
  m.gauge("test.prom.gauge").set(42);
  Histogram& h = m.histogram("test.prom.hist_ns");
  h.reset();
  for (int i = 1; i <= 100; ++i) h.record(i * 1000);
  const std::string text = m.prometheus_text();

  // Names sanitized to the Prometheus charset, one TYPE line per metric.
  EXPECT_NE(text.find("# TYPE test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_counter 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("test_prom_gauge 42"), std::string::npos);
  EXPECT_NE(text.find("test_prom_gauge_peak 42"), std::string::npos);

  // Histogram: cumulative buckets ending at +Inf, plus _sum and _count.
  EXPECT_NE(text.find("# TYPE test_prom_hist_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_ns_bucket{le=\"+Inf\"} 100"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_ns_count 100"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_ns_sum"), std::string::npos);

  // Cumulative monotonicity across the emitted buckets.
  std::int64_t last = 0;
  std::size_t pos = 0;
  while ((pos = text.find("test_prom_hist_ns_bucket{le=", pos)) !=
         std::string::npos) {
    const std::size_t sp = text.find("} ", pos);
    ASSERT_NE(sp, std::string::npos);
    const std::int64_t cum = std::atoll(text.c_str() + sp + 2);
    EXPECT_GE(cum, last);
    last = cum;
    ++pos;
  }
  EXPECT_EQ(last, 100);
}

TEST_F(ObsTest, ScrapeEndpointRoundTrip) {
  Metrics::instance().counter("test.scrape.counter").add(1);
  ScrapeEndpoint::Options so;
  so.tcp_port = 0;  // ephemeral loopback port
  ScrapeEndpoint ep(so);
  if (!ep.running()) {
    GTEST_SKIP() << "cannot bind a loopback listener in this environment";
  }
  ASSERT_GT(ep.port(), 0);
  const std::string payload = ScrapeEndpoint::http_get_local(ep.port());
  EXPECT_NE(payload.find("# TYPE"), std::string::npos)
      << payload.substr(0, 200);
  EXPECT_NE(payload.find("test_scrape_counter"), std::string::npos);
}

// ---------------------------------------------------------------------
// Dropped-events accounting and the report warning.
// ---------------------------------------------------------------------

TEST_F(ObsTest, DroppedEventsFeedCounterAndReportWarning) {
  Counter& dropped = Metrics::instance().counter("obs.dropped_events");
  dropped.reset();
  TraceSession::start(/*events_per_thread=*/8);
  for (int i = 0; i < 20; ++i) {
    trace_instant(EventKind::GateOpen, -1, -1, i, 0.0);
  }
  TraceSession::stop();
  EXPECT_EQ(dropped.value(), 12);
  TraceSession::stop();  // idempotent: drops folded in exactly once
  EXPECT_EQ(dropped.value(), 12);

  // A report that saw drops renders a loud warning; a clean one must not.
  RunReport rr;
  rr.title = "drop test";
  rr.trace_dropped = 12;
  const std::string text = rr.render();
  EXPECT_NE(text.find("WARNING"), std::string::npos);
  EXPECT_NE(text.find("dropped 12"), std::string::npos);
  rr.trace_dropped = 0;
  EXPECT_EQ(rr.render().find("WARNING"), std::string::npos);
}

// ---------------------------------------------------------------------
// Request span context.
// ---------------------------------------------------------------------

TEST_F(ObsTest, RequestIdPropagatesThroughBothSchedules) {
#if defined(POLYMG_TRACE_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out (POLYMG_TRACING=OFF)";
#endif
  const int threads_before = max_threads();
  auto p = solvers::PoissonProblem::random_rhs(2, w2d().n, 17);
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  for (const int threads : {1, 2, 4}) {
    set_num_threads(threads);
    for (const bool dependence : {false, true}) {
      CompileOptions o = CompileOptions::for_variant(Variant::OptPlus, 2);
      o.dependence_schedule = dependence;
      Executor ex(opt::compile(solvers::build_cycle(w2d()), o));
      ex.set_trace_request(42);
      EXPECT_EQ(ex.trace_request(), 42);
      TraceSession::start();
      ex.run(ext);
      TraceSession::stop();
      const std::vector<TraceEvent> evs = TraceSession::snapshot();
      // Every execution event — from every team thread — carries the
      // ticket; that is the whole point of the executor-owned span
      // context (a thread_local would miss the OMP team threads).
      int exec_events = 0;
      for (const TraceEvent& e : evs) {
        if (e.kind != EventKind::TileExec &&
            e.kind != EventKind::SlabExec &&
            e.kind != EventKind::GroupExec &&
            e.kind != EventKind::TimeTileExec) {
          continue;
        }
        ++exec_events;
        EXPECT_EQ(e.req, 42)
            << to_string(e.kind) << " threads=" << threads
            << (dependence ? " dependence" : " barrier");
      }
      EXPECT_GT(exec_events, 0);

      // Detaching restores the -1 sentinel for subsequent runs.
      ex.set_trace_request(-1);
      TraceSession::start();
      ex.run(ext);
      TraceSession::stop();
      for (const TraceEvent& e : TraceSession::snapshot()) {
        EXPECT_EQ(e.req, -1);
      }

      // The Chrome export carries the ticket in args and stays valid
      // JSON for Perfetto.
      std::ostringstream os;
      write_chrome_trace(os, evs, "req-test");
      const std::string json = os.str();
      JsonScanner scanner(json);
      EXPECT_TRUE(scanner.valid()) << json.substr(0, 400);
      EXPECT_NE(json.find("\"req\": 42"), std::string::npos);
    }
  }
  set_num_threads(threads_before);
}

// ---------------------------------------------------------------------
// Hardware counters: graceful everywhere, precise where permitted.
// ---------------------------------------------------------------------

TEST_F(ObsTest, PerfCountersAreGracefulWhenUnavailable) {
  PerfCounters pc;
  if (!pc.available()) {
    // Containers and perf_event_paranoid settings routinely forbid
    // perf_event_open; the wrapper must degrade, not fail.
    pc.start();
    const PerfCounters::Sample s = pc.stop();
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.cycles, -1);
    GTEST_SKIP() << "perf_event_open unavailable here (expected in "
                    "containers) — hw sampling not exercised";
  }
  pc.start();
  volatile double x = 1.0;
  for (int i = 0; i < 100000; ++i) x = x * 1.0000001 + 0.5;
  const PerfCounters::Sample s = pc.stop();
  EXPECT_TRUE(s.ok());
  EXPECT_GT(s.cycles, 0);
  EXPECT_GT(s.instructions, 0);
}

TEST_F(ObsTest, RooflineRowsRenderWithOrWithoutHardware) {
  auto p = solvers::PoissonProblem::random_rhs(2, w2d().n, 23);
  Executor ex(opt::compile(solvers::build_cycle(w2d()),
                           CompileOptions::for_variant(Variant::OptPlus, 2)));
  const bool hw = ex.enable_perf_attribution();
  EXPECT_TRUE(ex.perf_attribution_enabled());
  const std::vector<View> ext = {p.v_view(), p.f_view()};
  ex.run(ext);
  ex.run(ext);
  const RunReport rr = ex.run_report();
  ASSERT_EQ(rr.perf.size(), ex.plan().groups.size());
  for (const auto& row : rr.perf) {
    EXPECT_GT(row.model_bytes, 0.0) << row.label;
    EXPECT_GT(row.model_flops, 0.0) << row.label;
    EXPECT_GT(row.runs, 0) << row.label;
    if (hw) {
      EXPECT_GE(row.cycles, 0) << row.label;
    } else {
      EXPECT_EQ(row.cycles, -1) << row.label;
    }
  }
  const std::string text = rr.render();
  EXPECT_NE(text.find("roofline"), std::string::npos);
  EXPECT_NE(text.find("GB/s"), std::string::npos);
  if (!hw) {
    EXPECT_NE(text.find("hw counters unavailable"), std::string::npos);
  }
}

}  // namespace
}  // namespace polymg::obs
