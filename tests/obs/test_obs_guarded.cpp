// Fault visibility across the observability surfaces: one forced
// FaultInjector fault must show up in the SolveReport (the solver-level
// account), in the metrics registry (fault.* counters) and as a
// FaultInjected event in the trace — the same incident, three views.
#include <gtest/gtest.h>

#include "polymg/common/fault.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/obs/report.hpp"
#include "polymg/obs/trace.hpp"
#include "polymg/solvers/guarded.hpp"

namespace polymg::solvers {
namespace {

class ObsGuardedTest : public ::testing::Test {
protected:
  void SetUp() override { fault::FaultInjector::instance().reset(); }
  void TearDown() override {
    fault::FaultInjector::instance().reset();
    if (obs::TraceSession::active()) obs::TraceSession::stop();
  }
};

CycleConfig healthy2d() {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 4;
  cfg.n2 = 20;
  return cfg;
}

int count_kind(const std::vector<obs::TraceEvent>& evs, obs::EventKind k) {
  int n = 0;
  for (const obs::TraceEvent& e : evs) n += e.kind == k ? 1 : 0;
  return n;
}

TEST_F(ObsGuardedTest, InjectedPoolFaultVisibleInReportTraceAndCounters) {
  const std::int64_t fault_ctr0 =
      obs::Metrics::instance().counter("fault.pool_alloc").value();
  const std::int64_t fallback_ctr0 =
      obs::Metrics::instance().counter("guarded.fallback_runs").value();

  // The optimized plan's very first pooled allocation fails; the guard
  // must serve the run from the reference plan and the solve still
  // converges on attempt 0.
  fault::ScopedFault f(fault::kPoolAlloc, /*count=*/1);
  PoissonProblem p = PoissonProblem::manufactured(2, healthy2d().n);
  obs::TraceSession::start(std::size_t{1} << 18);
  const SolveReport rep = guarded_solve(healthy2d(), p, 1e-8);
  obs::TraceSession::stop();

  // 1. The solver-level account.
  EXPECT_TRUE(rep.converged) << rep.summary();
  EXPECT_EQ(f.fired(), 1);
  ASSERT_FALSE(rep.attempts.empty());
  EXPECT_GE(rep.attempts[0].executor_fallbacks, 1) << rep.summary();
  EXPECT_FALSE(rep.residual_history.empty());

  // 2. The metrics registry.
  EXPECT_EQ(obs::Metrics::instance().counter("fault.pool_alloc").value(),
            fault_ctr0 + 1);
  EXPECT_GE(obs::Metrics::instance().counter("guarded.fallback_runs").value(),
            fallback_ctr0 + 1);

  // 3. The trace: the injected fault and the guard's fallback are events.
#if !defined(POLYMG_TRACE_DISABLED)
  const std::vector<obs::TraceEvent> evs = obs::TraceSession::snapshot();
  EXPECT_EQ(count_kind(evs, obs::EventKind::FaultInjected), 1);
  EXPECT_GE(count_kind(evs, obs::EventKind::Fallback), 1);
  EXPECT_GT(count_kind(evs, obs::EventKind::HealthScan), 0);
  EXPECT_GT(count_kind(evs, obs::EventKind::Residual), 0);
  for (const obs::TraceEvent& e : evs) {
    if (e.kind == obs::EventKind::FaultInjected) {
      EXPECT_EQ(e.id, 0) << "pool.alloc encodes as site 0";
    }
  }
#endif
}

TEST_F(ObsGuardedTest, DegradationLadderDecisionsBecomeTraceEvents) {
  CycleConfig cfg = healthy2d();
  cfg.omega = 1.9;  // weighted Jacobi diverges; the ladder must walk
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  const std::int64_t degrades0 =
      obs::Metrics::instance().counter("solver.degrades").value();
  obs::TraceSession::start(std::size_t{1} << 18);
  const SolveReport rep = guarded_solve(cfg, p, 1e-6);
  obs::TraceSession::stop();
  ASSERT_GE(rep.attempts.size(), 2u) << rep.summary();

  const int ladder_steps = static_cast<int>(rep.attempts.size()) - 1;
  EXPECT_EQ(obs::Metrics::instance().counter("solver.degrades").value(),
            degrades0 + ladder_steps);
#if !defined(POLYMG_TRACE_DISABLED)
  const std::vector<obs::TraceEvent> evs = obs::TraceSession::snapshot();
  EXPECT_EQ(count_kind(evs, obs::EventKind::Degrade), ladder_steps)
      << "one Degrade event per ladder step taken";
  // Degrade events carry the rung kind, matching the report's attempts.
  std::size_t next_attempt = 1;
  for (const obs::TraceEvent& e : evs) {
    if (e.kind != obs::EventKind::Degrade) continue;
    ASSERT_LT(next_attempt, rep.attempts.size());
    EXPECT_EQ(e.id, static_cast<int>(rep.attempts[next_attempt].kind));
    ++next_attempt;
  }
#endif

  // The merged RunReport carries the ladder walk and residual history.
  obs::RunReport rr;
  attach_convergence(rep, rr);
  EXPECT_TRUE(rr.have_convergence);
  EXPECT_EQ(rr.attempt_lines.size(), rep.attempts.size());
  EXPECT_EQ(rr.residual_history.size(), rep.residual_history.size());
  const std::string text = rr.render();
  EXPECT_NE(text.find("omega-backoff"), std::string::npos) << text;
}

}  // namespace
}  // namespace polymg::solvers
