// Rank-failure recovery in the simulated distributed backend: a rank
// that dies mid-cycle is detected, its slab is rebuilt from the ring
// replica, the decomposition shrinks to the survivors, and the continued
// solve matches an unfailed run bit for bit. Recovery traffic lands in
// CommStats::recovery_* and the per-rank roll-up always sums to the
// aggregate.
#include <gtest/gtest.h>

#include "polymg/common/error.hpp"
#include "polymg/common/fault.hpp"
#include "polymg/dist/dist_mg.hpp"
#include "polymg/solvers/metrics.hpp"
#include "polymg/solvers/poisson.hpp"

namespace polymg::dist {
namespace {

using solvers::CycleConfig;
using solvers::PoissonProblem;
using solvers::residual_norm;

class ResilienceTest : public ::testing::Test {
protected:
  void SetUp() override { fault::FaultInjector::instance().reset(); }
  void TearDown() override { fault::FaultInjector::instance().reset(); }
};

CycleConfig cfg2d() {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 3;
  return cfg;
}

TEST_F(ResilienceTest, CleanSolveCyclesMatchesPlainCycles) {
  const CycleConfig cfg = cfg2d();
  PoissonProblem plain = PoissonProblem::random_rhs(2, cfg.n, 5);
  PoissonProblem ckpt = PoissonProblem::random_rhs(2, cfg.n, 5);

  DistMgSolver a(cfg, 4);
  a.scatter(plain.v_view(), plain.f_view());
  for (int c = 0; c < 6; ++c) a.cycle();
  a.gather(plain.v_view());

  DistMgSolver b(cfg, 4);
  b.scatter(ckpt.v_view(), ckpt.f_view());
  const auto rep = b.solve_cycles(6, {/*checkpoint_cadence=*/1,
                                      /*max_recoveries=*/2});
  b.gather(ckpt.v_view());

  EXPECT_EQ(rep.cycles_run, 6);
  EXPECT_EQ(rep.rank_deaths, 0);
  EXPECT_EQ(rep.checkpoint_writes, 6) << "cycles 0..5 (none after the last)";
  EXPECT_EQ(grid::max_diff(plain.v_view(), ckpt.v_view(), plain.domain()),
            0.0)
      << "checkpointing must not perturb the solve";
  // Replication is charged to the resilience budget, never to the
  // solve's own traffic.
  EXPECT_GT(b.stats().recovery_messages, 0);
  EXPECT_EQ(a.stats().messages, b.stats().messages);
  EXPECT_EQ(a.stats().doubles_sent, b.stats().doubles_sent);
}

TEST_F(ResilienceTest, RankDeathRecoversToTheUnfailedResult) {
  const CycleConfig cfg = cfg2d();
  PoissonProblem clean = PoissonProblem::random_rhs(2, cfg.n, 33);
  PoissonProblem failed = PoissonProblem::random_rhs(2, cfg.n, 33);
  const int cycles = 6;

  DistMgSolver a(cfg, 4);
  a.scatter(clean.v_view(), clean.f_view());
  const auto base = a.solve_cycles(cycles, {1, 2});
  a.gather(clean.v_view());
  ASSERT_EQ(base.rank_deaths, 0);

  DistMgSolver b(cfg, 4);
  b.scatter(failed.v_view(), failed.f_view());
  // One death at a deterministic pseudo-random halo message mid-solve.
  fault::FaultInjector::instance().arm(fault::kRankDeath, 1, 0.002, 77);
  const auto rep = b.solve_cycles(cycles, {1, 2});
  ASSERT_EQ(fault::FaultInjector::instance().fired(fault::kRankDeath), 1)
      << "the death must actually fire for this test to mean anything";
  b.gather(failed.v_view());

  EXPECT_EQ(rep.rank_deaths, 1);
  EXPECT_EQ(rep.recoveries, 1);
  EXPECT_EQ(rep.final_ranks, 3);
  EXPECT_EQ(b.ranks(), 3);
  // Distributed results are rank-count independent and the rollback
  // resumes at a cycle boundary, so the recovered solve reproduces the
  // unfailed iterate exactly — same residual, same bits.
  EXPECT_EQ(grid::max_diff(clean.v_view(), failed.v_view(), clean.domain()),
            0.0);
  EXPECT_DOUBLE_EQ(
      residual_norm(failed.v_view(), failed.f_view(), failed.n, failed.h),
      residual_norm(clean.v_view(), clean.f_view(), clean.n, clean.h));
  EXPECT_GT(b.stats().recovery_messages, 0);
  EXPECT_GT(b.stats().recovery_doubles, 0);
}

TEST_F(ResilienceTest, PerRankStatsRollUpToTheAggregate) {
  const CycleConfig cfg = cfg2d();
  PoissonProblem p = PoissonProblem::random_rhs(2, cfg.n, 9);
  DistMgSolver solver(cfg, 4);
  solver.scatter(p.v_view(), p.f_view());
  fault::FaultInjector::instance().arm(fault::kRankDeath, 1, 0.002, 77);
  (void)solver.solve_cycles(5, {1, 2});

  CommStats sum;
  for (const CommStats& rs : solver.rank_stats()) sum += rs;
  const CommStats& total = solver.stats();
  EXPECT_EQ(sum.messages, total.messages);
  EXPECT_EQ(sum.doubles_sent, total.doubles_sent);
  EXPECT_EQ(sum.retries, total.retries);
  EXPECT_EQ(sum.recovery_messages, total.recovery_messages);
  EXPECT_EQ(sum.recovery_doubles, total.recovery_doubles);

  solver.reset_stats();
  EXPECT_EQ(solver.stats().messages, 0);
  EXPECT_EQ(solver.stats().recovery_messages, 0);
  for (const CommStats& rs : solver.rank_stats()) {
    EXPECT_EQ(rs.messages, 0);
    EXPECT_EQ(rs.recovery_doubles, 0);
  }
}

TEST_F(ResilienceTest, DeathWithoutCheckpointIsUnrecoverable) {
  const CycleConfig cfg = cfg2d();
  PoissonProblem p = PoissonProblem::random_rhs(2, cfg.n, 3);
  DistMgSolver solver(cfg, 4);
  solver.scatter(p.v_view(), p.f_view());
  fault::FaultInjector::instance().arm(fault::kRankDeath, 1);
  try {
    (void)solver.solve_cycles(4, {/*checkpoint_cadence=*/0, 2});
    FAIL() << "expected Error(RankFailure)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::RankFailure);
  }
}

TEST_F(ResilienceTest, RecoveryBudgetIsEnforced) {
  const CycleConfig cfg = cfg2d();
  PoissonProblem p = PoissonProblem::random_rhs(2, cfg.n, 3);
  DistMgSolver solver(cfg, 4);
  solver.scatter(p.v_view(), p.f_view());
  // A rank dies on every exchange: two recoveries (4 -> 3 -> 2 ranks)
  // are allowed, the third death is terminal.
  fault::FaultInjector::instance().arm(fault::kRankDeath, -1);
  try {
    (void)solver.solve_cycles(4, {1, /*max_recoveries=*/2});
    FAIL() << "expected Error(RankFailure) once the budget is spent";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::RankFailure);
  }
  fault::FaultInjector::instance().disarm(fault::kRankDeath);
  EXPECT_EQ(solver.ranks(), 2) << "two recoveries happened before giving up";
}

TEST_F(ResilienceTest, CorruptReplicaMakesRecoveryUnserviceable) {
  const CycleConfig cfg = cfg2d();
  PoissonProblem p = PoissonProblem::random_rhs(2, cfg.n, 3);
  DistMgSolver solver(cfg, 4);
  solver.scatter(p.v_view(), p.f_view());
  // The initial checkpoint is corrupted in storage; the death then finds
  // a replica that fails its checksum — recovery must refuse to smooth a
  // corrupt slab into the iterate.
  fault::FaultInjector::instance().arm(fault::kCheckpointCorrupt, 1);
  fault::FaultInjector::instance().arm(fault::kRankDeath, 1);
  try {
    (void)solver.solve_cycles(4, {1, 2});
    FAIL() << "expected Error(CheckpointCorrupt)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::CheckpointCorrupt);
  }
}

TEST_F(ResilienceTest, ShrinkToSurvivorsMatchesFreshDecomposition) {
  const CycleConfig cfg = cfg2d();
  const Decomp four(cfg, 4);
  const Decomp three = four.shrink_to_survivors(3);
  const Decomp fresh(cfg, 3);
  ASSERT_EQ(three.ranks(), 3);
  for (int l = 0; l < cfg.levels; ++l) {
    for (int r = 0; r < 3; ++r) {
      EXPECT_EQ(three.owned(l, r).lo, fresh.owned(l, r).lo);
      EXPECT_EQ(three.owned(l, r).hi, fresh.owned(l, r).hi);
    }
  }
  EXPECT_THROW((void)four.shrink_to_survivors(0), Error);
  EXPECT_THROW((void)four.shrink_to_survivors(5), Error);
}

}  // namespace
}  // namespace polymg::dist
