// Distributed-memory simulation: decomposition invariants, bitwise
// agreement with the shared-memory solver for any rank count and ghost
// depth, and the communication-aggregation accounting (deeper ghosts ->
// fewer messages, more data + redundant compute).
#include <gtest/gtest.h>

#include "polymg/dist/dist_mg.hpp"
#include "polymg/solvers/handopt.hpp"
#include "polymg/solvers/metrics.hpp"
#include "polymg/solvers/poisson.hpp"

namespace polymg::dist {
namespace {

using solvers::CycleConfig;
using solvers::CycleKind;
using solvers::PoissonProblem;

CycleConfig cfg2d(CycleKind kind = CycleKind::V) {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 3;
  cfg.kind = kind;
  return cfg;
}

TEST(Decomp, PartitionsEveryLevel) {
  const CycleConfig cfg = cfg2d();
  for (int ranks : {1, 2, 3, 4, 7}) {
    const Decomp d(cfg, ranks);
    for (int l = 0; l < cfg.levels; ++l) {
      poly::index_t covered = 0;
      poly::index_t expect_lo = 1;
      for (int r = 0; r < ranks; ++r) {
        const poly::Interval iv = d.owned(l, r);
        EXPECT_EQ(iv.lo, expect_lo) << "level " << l << " rank " << r;
        EXPECT_FALSE(iv.empty());
        covered += iv.size();
        expect_lo = iv.hi + 1;
      }
      EXPECT_EQ(covered, cfg.level_n(l)) << "level " << l;
    }
  }
}

TEST(Decomp, CoarseFineAlignment) {
  const CycleConfig cfg = cfg2d();
  const Decomp d(cfg, 3);
  for (int l = 1; l < cfg.levels; ++l) {
    for (int r = 0; r < 3; ++r) {
      const poly::Interval c = d.owned(l - 1, r);
      const poly::Interval f = d.owned(l, r);
      // Every owned coarse row's 2i image (and its ±1 halo start) lies in
      // this rank's fine rows.
      EXPECT_EQ(f.lo, 2 * c.lo - 1);
      EXPECT_GE(f.hi, 2 * c.hi);
    }
  }
}

struct DistCase {
  int ndim;
  int ranks;
  int ghost;
  CycleKind kind;
};

class DistEquivalence : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistEquivalence, MatchesHandOptBitwise) {
  const DistCase c = GetParam();
  CycleConfig cfg;
  cfg.ndim = c.ndim;
  cfg.n = c.ndim == 2 ? 63 : 31;
  cfg.levels = 3;
  cfg.kind = c.kind;

  PoissonProblem ref = PoissonProblem::random_rhs(cfg.ndim, cfg.n, 77);
  PoissonProblem dst = PoissonProblem::random_rhs(cfg.ndim, cfg.n, 77);

  solvers::HandOptSolver shared(cfg);
  DistMgSolver dist(cfg, c.ranks, c.ghost);
  dist.scatter(dst.v_view(), dst.f_view());

  for (int i = 0; i < 2; ++i) {
    shared.cycle(ref.v_view(), ref.f_view());
    dist.cycle();
  }
  dist.gather(dst.v_view());
  EXPECT_EQ(grid::max_diff(ref.v_view(), dst.v_view(), ref.interior()), 0.0)
      << "ranks=" << c.ranks << " ghost=" << c.ghost;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DistEquivalence,
    ::testing::Values(DistCase{2, 1, 1, CycleKind::V},
                      DistCase{2, 2, 1, CycleKind::V},
                      DistCase{2, 4, 1, CycleKind::V},
                      DistCase{2, 4, 3, CycleKind::V},
                      DistCase{2, 3, 2, CycleKind::W},
                      DistCase{2, 2, 4, CycleKind::F},
                      DistCase{3, 2, 1, CycleKind::V},
                      DistCase{3, 3, 2, CycleKind::V},  // coarsest 7 rows
                      DistCase{3, 2, 3, CycleKind::W}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      const DistCase& c = info.param;
      return std::to_string(c.ndim) + "D_r" + std::to_string(c.ranks) +
             "_g" + std::to_string(c.ghost) + "_" +
             (c.kind == CycleKind::V   ? "V"
              : c.kind == CycleKind::W ? "W"
                                       : "F");
    });

TEST(DistMg, CommunicationAggregationTradesMessagesForBytes) {
  CycleConfig cfg = cfg2d();
  cfg.n1 = cfg.n2 = cfg.n3 = 4;
  PoissonProblem p1 = PoissonProblem::random_rhs(2, cfg.n, 9);
  PoissonProblem p4 = PoissonProblem::random_rhs(2, cfg.n, 9);

  // Coarsest level has 15 rows: 3 ranks own 5 each, enough for depth 4.
  DistMgSolver shallow(cfg, 3, /*ghost=*/1);
  DistMgSolver deep(cfg, 3, /*ghost=*/4);
  shallow.scatter(p1.v_view(), p1.f_view());
  deep.scatter(p4.v_view(), p4.f_view());
  shallow.reset_stats();
  deep.reset_stats();
  shallow.cycle();
  deep.cycle();

  // The aggregated version exchanges far fewer times...
  EXPECT_LT(deep.stats().exchanges, shallow.stats().exchanges);
  EXPECT_LT(deep.stats().messages, shallow.stats().messages);
  // ...while shipping more doubles per exchange round overall.
  EXPECT_GT(static_cast<double>(deep.stats().doubles_sent) /
                static_cast<double>(deep.stats().messages),
            static_cast<double>(shallow.stats().doubles_sent) /
                static_cast<double>(shallow.stats().messages));
}

TEST(DistMg, ConvergesLikeSharedMemory) {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 127;
  cfg.levels = 5;  // coarsest 7 rows: 3 ranks own >= 2 each
  cfg.n2 = 30;
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  DistMgSolver dist(cfg, 3, 2);
  dist.scatter(p.v_view(), p.f_view());
  double prev = solvers::residual_norm(p.v_view(), p.f_view(), p.n, p.h);
  for (int i = 0; i < 4; ++i) {
    dist.cycle();
    dist.gather(p.v_view());
    const double r = solvers::residual_norm(p.v_view(), p.f_view(), p.n, p.h);
    EXPECT_LT(r, 0.25 * prev);
    prev = r;
  }
}

TEST(DistMg, RejectsInvalidConfigs) {
  CycleConfig cfg = cfg2d();
  EXPECT_THROW(DistMgSolver(cfg, 0), Error);
  EXPECT_THROW(DistMgSolver(cfg, 100), Error);  // > coarsest rows
  // Ghost depth deeper than a rank's coarsest block.
  EXPECT_THROW(DistMgSolver(cfg, 7, 5), Error);
}

}  // namespace
}  // namespace polymg::dist
