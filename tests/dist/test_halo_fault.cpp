// Halo-exchange fault injection: dropped deliveries are retried (and
// counted), a retried cycle still matches a clean one bitwise, and a
// persistently dropped message surfaces as Error(HaloExchangeFailed).
#include <gtest/gtest.h>

#include "polymg/common/error.hpp"
#include "polymg/common/fault.hpp"
#include "polymg/dist/dist_mg.hpp"
#include "polymg/solvers/poisson.hpp"

namespace polymg::dist {
namespace {

using solvers::CycleConfig;
using solvers::PoissonProblem;

class HaloFaultTest : public ::testing::Test {
protected:
  void SetUp() override { fault::FaultInjector::instance().reset(); }
  void TearDown() override { fault::FaultInjector::instance().reset(); }
};

CycleConfig cfg2d() {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 3;
  return cfg;
}

TEST_F(HaloFaultTest, NoFaultNoRetries) {
  const CycleConfig cfg = cfg2d();
  PoissonProblem p = PoissonProblem::random_rhs(2, cfg.n, 21);
  DistMgSolver solver(cfg, 4);
  solver.scatter(p.v_view(), p.f_view());
  solver.cycle();
  EXPECT_EQ(solver.stats().retries, 0);
  EXPECT_GT(solver.stats().messages, 0);
}

TEST_F(HaloFaultTest, DroppedMessagesAreRetriedAndCounted) {
  const CycleConfig cfg = cfg2d();
  PoissonProblem p = PoissonProblem::random_rhs(2, cfg.n, 21);
  DistMgSolver solver(cfg, 4);
  solver.scatter(p.v_view(), p.f_view());
  // Two drops, each below the retry cap: the exchange re-sends twice and
  // completes.
  fault::FaultInjector::instance().arm(fault::kDistHalo, 2);
  solver.cycle();
  EXPECT_EQ(solver.stats().retries, 2);
  EXPECT_EQ(fault::FaultInjector::instance().fired(fault::kDistHalo), 2);
}

TEST_F(HaloFaultTest, RetriedCycleMatchesCleanCycleBitwise) {
  const CycleConfig cfg = cfg2d();
  PoissonProblem clean = PoissonProblem::random_rhs(2, cfg.n, 33);
  PoissonProblem faulty = PoissonProblem::random_rhs(2, cfg.n, 33);

  DistMgSolver a(cfg, 3);
  a.scatter(clean.v_view(), clean.f_view());
  a.cycle();
  a.gather(clean.v_view());

  DistMgSolver b(cfg, 3);
  b.set_max_halo_retries(1000);  // retry forever; only numerics on trial
  b.scatter(faulty.v_view(), faulty.f_view());
  // Probabilistic drops sprinkled over the whole cycle (deterministic
  // seed): every one is re-sent, so the numerics are untouched.
  fault::FaultInjector::instance().arm(fault::kDistHalo, -1, 0.2, 99);
  b.cycle();
  fault::FaultInjector::instance().disarm(fault::kDistHalo);
  b.gather(faulty.v_view());

  EXPECT_GT(b.stats().retries, 0) << "the fault pattern should drop some";
  EXPECT_EQ(grid::max_diff(clean.v_view(), faulty.v_view(), clean.domain()),
            0.0);
}

TEST_F(HaloFaultTest, PersistentDropThrowsHaloExchangeFailed) {
  const CycleConfig cfg = cfg2d();
  PoissonProblem p = PoissonProblem::random_rhs(2, cfg.n, 3);
  DistMgSolver solver(cfg, 4);
  ASSERT_EQ(solver.max_halo_retries(), 3) << "documented default";
  solver.scatter(p.v_view(), p.f_view());
  fault::FaultInjector::instance().arm(fault::kDistHalo, -1);
  try {
    solver.cycle();
    FAIL() << "expected Error(HaloExchangeFailed)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::HaloExchangeFailed);
  }
  // The exchange gave up after the cap, not before.
  EXPECT_EQ(solver.stats().retries, solver.max_halo_retries());
}

TEST_F(HaloFaultTest, RetryCapIsConfigurable) {
  const CycleConfig cfg = cfg2d();
  PoissonProblem p = PoissonProblem::random_rhs(2, cfg.n, 3);
  DistMgSolver solver(cfg, 2);
  solver.set_max_halo_retries(7);
  solver.scatter(p.v_view(), p.f_view());
  // 7 drops then clean: exactly at the cap, so the message goes through.
  fault::FaultInjector::instance().arm(fault::kDistHalo, 7);
  solver.cycle();
  EXPECT_EQ(solver.stats().retries, 7);

  solver.reset_stats();
  solver.set_max_halo_retries(0);
  fault::FaultInjector::instance().arm(fault::kDistHalo, 1);
  EXPECT_THROW(solver.cycle(), Error) << "cap 0 means no second chances";
}

}  // namespace
}  // namespace polymg::dist
