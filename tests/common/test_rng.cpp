#include <gtest/gtest.h>

#include "polymg/common/rng.hpp"

namespace polymg {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, BelowBound) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, RoughlyCentered) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

}  // namespace
}  // namespace polymg
