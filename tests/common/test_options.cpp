#include <gtest/gtest.h>

#include <cstdlib>

#include "polymg/common/error.hpp"
#include "polymg/common/options.hpp"

namespace polymg {
namespace {

Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, KeyValueForms) {
  const Options o = parse({"--n", "128", "--tile=32", "--verbose"});
  EXPECT_EQ(o.get_int("n", 0), 128);
  EXPECT_EQ(o.get_int("tile", 0), 32);
  EXPECT_TRUE(o.get_flag("verbose"));
  EXPECT_FALSE(o.get_flag("quiet"));
  EXPECT_EQ(o.get_int("missing", 7), 7);
}

TEST(Options, Positional) {
  const Options o = parse({"run", "--n", "4", "fast"});
  ASSERT_EQ(o.positional().size(), 2u);
  EXPECT_EQ(o.positional()[0], "run");
  EXPECT_EQ(o.positional()[1], "fast");
}

TEST(Options, DoubleAndBadInput) {
  const Options o = parse({"--omega", "0.667", "--bad", "xyz"});
  EXPECT_DOUBLE_EQ(o.get_double("omega", 0), 0.667);
  EXPECT_THROW((void)o.get_int("bad", 0), Error);
}

TEST(Options, EnvironmentFallback) {
  ::setenv("POLYMG_FROM_ENV", "42", 1);
  const Options o = parse({});
  EXPECT_EQ(o.get_int("from-env", 0), 42);
  ::unsetenv("POLYMG_FROM_ENV");
  EXPECT_EQ(o.get_int("from-env", 5), 5);
}

TEST(Options, FlagFollowedByFlagIsBareFlag) {
  const Options o = parse({"--a", "--b", "3"});
  EXPECT_TRUE(o.get_flag("a"));
  EXPECT_EQ(o.get_int("b", 0), 3);
}

}  // namespace
}  // namespace polymg
