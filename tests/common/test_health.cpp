#include "polymg/common/health.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "polymg/grid/buffer.hpp"

namespace polymg::health {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(HasNonfinite, CleanBufferPasses) {
  std::vector<double> a(1000, 0.0);
  a[3] = -1.5e300;
  a[999] = 2.25e-308;  // subnormal territory is still finite
  EXPECT_FALSE(has_nonfinite(a.data(), a.size()));
}

TEST(HasNonfinite, DetectsNaNAndInfAnywhere) {
  for (std::size_t pos : {std::size_t{0}, std::size_t{511}, std::size_t{999}}) {
    std::vector<double> a(1000, 1.0);
    a[pos] = kNaN;
    EXPECT_TRUE(has_nonfinite(a.data(), a.size())) << "NaN at " << pos;
    a[pos] = -kInf;
    EXPECT_TRUE(has_nonfinite(a.data(), a.size())) << "-inf at " << pos;
  }
}

TEST(HasNonfinite, EmptyRangeIsClean) {
  EXPECT_FALSE(has_nonfinite(nullptr, 0));
}

TEST(HasNonfinite, ViewScanHonoursRegion) {
  const poly::Box domain = poly::Box::cube(2, 0, 9);
  grid::Buffer buf(static_cast<std::size_t>(domain.count()));
  buf.fill(0.0);
  grid::View v = grid::View::over(buf.data(), domain);
  // Poison a corner outside the interior: an interior scan stays clean.
  v.at2(0, 0) = kNaN;
  EXPECT_FALSE(has_nonfinite(v, poly::Box::cube(2, 1, 8)));
  EXPECT_TRUE(has_nonfinite(v, domain));
  // Interior poison is seen by both.
  v.at2(4, 7) = kInf;
  EXPECT_TRUE(has_nonfinite(v, poly::Box::cube(2, 1, 8)));
}

TEST(HasNonfinite, ViewScan3d) {
  const poly::Box domain = poly::Box::cube(3, 0, 5);
  grid::Buffer buf(static_cast<std::size_t>(domain.count()));
  buf.fill(1.0);
  grid::View v = grid::View::over(buf.data(), domain);
  EXPECT_FALSE(has_nonfinite(v, domain));
  v.at3(3, 2, 4) = kNaN;
  EXPECT_TRUE(has_nonfinite(v, domain));
  EXPECT_FALSE(has_nonfinite(v, poly::Box::cube(3, 0, 1)));
}

TEST(ResidualMonitor, SteadyContractionIsConverging) {
  ResidualMonitor m;
  double r = 1.0;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(m.observe(r), Trend::Converging);
    r *= 0.1;
  }
  EXPECT_EQ(m.trend(), Trend::Converging);
  EXPECT_EQ(m.stalled_cycles(), 0);
}

TEST(ResidualMonitor, NonfiniteResidualDiverges) {
  ResidualMonitor m;
  EXPECT_EQ(m.observe(1.0), Trend::Converging);
  EXPECT_EQ(m.observe(kNaN), Trend::Diverging);
  ResidualMonitor m2;
  EXPECT_EQ(m2.observe(kInf), Trend::Diverging);
}

TEST(ResidualMonitor, GrowthPastFactorDiverges) {
  ResidualMonitor::Config cfg;
  cfg.divergence_factor = 100.0;
  ResidualMonitor m(cfg);
  EXPECT_EQ(m.observe(1.0), Trend::Converging);
  EXPECT_EQ(m.observe(0.5), Trend::Converging);  // best = 0.5
  EXPECT_EQ(m.observe(40.0), Trend::Converging); // 80x best: growing, not yet out
  EXPECT_EQ(m.observe(60.0), Trend::Diverging);  // 120x best
}

TEST(ResidualMonitor, StallWindowTriggersStagnation) {
  ResidualMonitor::Config cfg;
  cfg.stagnation_window = 3;
  cfg.stagnation_ratio = 0.99;
  ResidualMonitor m(cfg);
  EXPECT_EQ(m.observe(1.0), Trend::Converging);
  EXPECT_EQ(m.observe(0.999), Trend::Converging);  // stall 1
  EXPECT_EQ(m.observe(0.9985), Trend::Converging); // stall 2
  EXPECT_EQ(m.observe(0.998), Trend::Stagnating);  // stall 3 = window
  EXPECT_EQ(m.stalled_cycles(), 3);
}

TEST(ResidualMonitor, RealProgressResetsStallCount) {
  ResidualMonitor::Config cfg;
  cfg.stagnation_window = 2;
  ResidualMonitor m(cfg);
  m.observe(1.0);
  m.observe(0.999);          // stall 1
  m.observe(0.5);            // real contraction resets
  EXPECT_EQ(m.stalled_cycles(), 0);
  m.observe(0.4999);         // stall 1 again
  EXPECT_EQ(m.observe(0.4998), Trend::Stagnating);
}

TEST(ResidualMonitor, ResetClearsHistory) {
  ResidualMonitor m;
  m.observe(1.0);
  m.observe(std::numeric_limits<double>::quiet_NaN());
  ASSERT_EQ(m.trend(), Trend::Diverging);
  m.reset();
  EXPECT_EQ(m.trend(), Trend::Converging);
  EXPECT_TRUE(m.history().empty());
  EXPECT_EQ(m.observe(5.0), Trend::Converging);
}

TEST(ResidualMonitor, ToStringNames) {
  EXPECT_STREQ(to_string(Trend::Converging), "converging");
  EXPECT_STREQ(to_string(Trend::Stagnating), "stagnating");
  EXPECT_STREQ(to_string(Trend::Diverging), "diverging");
}

TEST(ResidualMonitor, HistoryIsBoundedByTheRing) {
  ResidualMonitor::Config cfg;
  cfg.history_limit = 4;
  ResidualMonitor m(cfg);
  for (int i = 1; i <= 10; ++i) m.observe(1.0 / i);
  EXPECT_EQ(m.observed(), 10u) << "the count survives the ring wrapping";
  const std::vector<double> h = m.history();
  ASSERT_EQ(h.size(), 4u) << "only the last history_limit entries remain";
  // Oldest-first: observations 7, 8, 9, 10.
  EXPECT_DOUBLE_EQ(h[0], 1.0 / 7);
  EXPECT_DOUBLE_EQ(h[3], 1.0 / 10);
  EXPECT_DOUBLE_EQ(m.last(), 1.0 / 10);
}

TEST(ResidualMonitor, RingDoesNotChangeClassification) {
  // Same observations through a tiny ring and a huge one: identical
  // verdicts, best, and stall counts — the ring is reporting-only.
  ResidualMonitor::Config small_cfg, big_cfg;
  small_cfg.history_limit = 2;
  big_cfg.history_limit = 1024;
  ResidualMonitor a(small_cfg), b(big_cfg);
  const double seq[] = {1.0, 0.5, 0.499, 0.4989, 0.49889, 0.49888, 700.0};
  for (double r : seq) {
    EXPECT_EQ(a.observe(r), b.observe(r)) << r;
  }
  EXPECT_EQ(a.best(), b.best());
  EXPECT_EQ(a.stalled_cycles(), b.stalled_cycles());
}

TEST(ResidualMonitor, StateRestoreReplaysIdentically) {
  ResidualMonitor::Config cfg;
  cfg.stagnation_window = 3;
  ResidualMonitor m(cfg);
  m.observe(1.0);
  m.observe(0.25);
  const ResidualMonitor::State snap = m.state();

  // Walk the monitor somewhere bad, then roll it back.
  m.observe(0.2499);
  m.observe(0.24989);
  m.observe(std::numeric_limits<double>::quiet_NaN());
  ASSERT_EQ(m.trend(), Trend::Diverging);
  m.restore(snap);
  EXPECT_EQ(m.trend(), Trend::Converging);
  EXPECT_EQ(m.observed(), 2u);
  EXPECT_DOUBLE_EQ(m.last(), 0.25);

  // From the restore point on, verdicts match a monitor that never saw
  // the corrupt excursion at all.
  ResidualMonitor fresh(cfg);
  fresh.observe(1.0);
  fresh.observe(0.25);
  const double replay[] = {0.1, 0.0999, 0.09989, 0.099889, 0.01};
  for (double r : replay) {
    EXPECT_EQ(m.observe(r), fresh.observe(r)) << r;
    EXPECT_EQ(m.stalled_cycles(), fresh.stalled_cycles()) << r;
  }
}

}  // namespace
}  // namespace polymg::health
