#include <gtest/gtest.h>

#include <cstdint>

#include "polymg/common/align.hpp"

namespace polymg {
namespace {

TEST(Align, PointerIsCacheLineAligned) {
  for (std::size_t n : {1u, 7u, 64u, 1000u, 4096u}) {
    auto p = aligned_array<double>(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p.get()) % kBufferAlignment,
              0u);
  }
}

TEST(Align, ZeroSizeStillValid) {
  void* p = aligned_malloc(0);
  EXPECT_NE(p, nullptr);
  aligned_free(p);
}

TEST(Align, ArrayIsWritable) {
  auto p = aligned_array<double>(128);
  for (int i = 0; i < 128; ++i) p[i] = i;
  for (int i = 0; i < 128; ++i) EXPECT_EQ(p[i], i);
}

}  // namespace
}  // namespace polymg
