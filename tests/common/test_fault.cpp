#include "polymg/common/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "polymg/common/error.hpp"

namespace polymg::fault {
namespace {

/// Every test leaves the process-global injector clean.
class FaultTest : public ::testing::Test {
protected:
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(FaultTest, NothingArmedNeverFails) {
  EXPECT_FALSE(FaultInjector::instance().any_armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(should_fail(kPoolAlloc));
    EXPECT_FALSE(should_fail(kKernelOutput));
    EXPECT_FALSE(should_fail(kDistHalo));
  }
}

TEST_F(FaultTest, BoundedCountFiresExactly) {
  auto& fi = FaultInjector::instance();
  fi.arm(kPoolAlloc, 3);
  EXPECT_TRUE(fi.any_armed());
  int fired = 0;
  for (int i = 0; i < 10; ++i) fired += should_fail(kPoolAlloc) ? 1 : 0;
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(fi.fired(kPoolAlloc), 3);
  EXPECT_FALSE(fi.any_armed());  // exhausted sites disarm themselves
}

TEST_F(FaultTest, SitesAreAddressedIndependently) {
  auto& fi = FaultInjector::instance();
  fi.arm(kDistHalo, 2);
  EXPECT_FALSE(should_fail(kPoolAlloc));
  EXPECT_FALSE(should_fail(kKernelOutput));
  EXPECT_TRUE(should_fail(kDistHalo));
  EXPECT_TRUE(should_fail(kDistHalo));
  EXPECT_FALSE(should_fail(kDistHalo));
  EXPECT_EQ(fi.fired(kPoolAlloc), 0);
  EXPECT_EQ(fi.fired(kDistHalo), 2);
}

TEST_F(FaultTest, ProbabilisticFiringIsDeterministic) {
  auto& fi = FaultInjector::instance();
  const auto draw = [&](std::uint64_t seed) {
    fi.reset();
    fi.arm(kKernelOutput, -1, 0.5, seed);
    std::vector<bool> pattern;
    pattern.reserve(64);
    for (int i = 0; i < 64; ++i) pattern.push_back(should_fail(kKernelOutput));
    return pattern;
  };
  const auto a = draw(42);
  const auto b = draw(42);
  EXPECT_EQ(a, b) << "same seed must reproduce the same fault pattern";
  const auto c = draw(43);
  EXPECT_NE(a, c) << "different seeds should differ somewhere in 64 draws";
  // p = 0.5 over 64 draws: both outcomes must occur.
  int hits = 0;
  for (bool x : a) hits += x ? 1 : 0;
  EXPECT_GT(hits, 0);
  EXPECT_LT(hits, 64);
}

TEST_F(FaultTest, UnboundedUntilDisarm) {
  auto& fi = FaultInjector::instance();
  fi.arm(kPoolAlloc, -1);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(should_fail(kPoolAlloc));
  fi.disarm(kPoolAlloc);
  EXPECT_FALSE(should_fail(kPoolAlloc));
  EXPECT_EQ(fi.fired(kPoolAlloc), 50) << "fired count survives disarm";
}

TEST_F(FaultTest, RearmKeepsFiredCounter) {
  auto& fi = FaultInjector::instance();
  fi.arm(kDistHalo, 1);
  EXPECT_TRUE(should_fail(kDistHalo));
  fi.arm(kDistHalo, 1);
  EXPECT_TRUE(should_fail(kDistHalo));
  EXPECT_EQ(fi.fired(kDistHalo), 2);
}

TEST_F(FaultTest, ResetClearsEverything) {
  auto& fi = FaultInjector::instance();
  fi.arm(kPoolAlloc, -1);
  ASSERT_TRUE(should_fail(kPoolAlloc));
  fi.reset();
  EXPECT_FALSE(fi.any_armed());
  EXPECT_FALSE(should_fail(kPoolAlloc));
  EXPECT_EQ(fi.fired(kPoolAlloc), 0);
}

TEST_F(FaultTest, ScopedFaultDisarmsOnExit) {
  {
    ScopedFault f(kKernelOutput, 5);
    EXPECT_TRUE(should_fail(kKernelOutput));
    EXPECT_EQ(f.fired(), 1);
  }
  EXPECT_FALSE(should_fail(kKernelOutput));
  // fired() survives the scope via the injector.
  EXPECT_EQ(FaultInjector::instance().fired(kKernelOutput), 1);
}

TEST_F(FaultTest, ListSitesCoversEveryCanonicalSite) {
  const std::vector<std::string> sites = FaultInjector::list_sites();
  for (const char* s : {kPoolAlloc, kKernelOutput, kDistHalo, kRankDeath,
                        kCheckpointCorrupt, kKernelBitflip, kSolveCrash}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), s), sites.end()) << s;
    EXPECT_TRUE(FaultInjector::is_known_site(s)) << s;
  }
  EXPECT_FALSE(FaultInjector::is_known_site("no.such.site"));
}

TEST_F(FaultTest, ArmFromSpecArmsNamedSites) {
  arm_from_spec("dist.halo:2,kernel.bitflip:1:0.5:99");
  EXPECT_TRUE(should_fail(kDistHalo));
  EXPECT_TRUE(should_fail(kDistHalo));
  EXPECT_FALSE(should_fail(kDistHalo)) << "count 2 is exhausted";
  // Probability 0.5 with a fixed seed is deterministic: some of the next
  // draws fire, and only ever once in total (count 1).
  int fired = 0;
  for (int i = 0; i < 64; ++i) fired += should_fail(kKernelBitflip) ? 1 : 0;
  EXPECT_EQ(fired, 1);
}

TEST_F(FaultTest, ArmFromSpecRejectsUnknownSitesAtStartup) {
  try {
    arm_from_spec("dist.hallo:1");
    FAIL() << "a typo'd site name must be rejected, not silently ignored";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::PreconditionViolated);
    const std::string what = e.what();
    EXPECT_NE(what.find("dist.hallo"), std::string::npos);
    EXPECT_NE(what.find(kRankDeath), std::string::npos)
        << "the error must list the valid sites";
  }
  EXPECT_FALSE(FaultInjector::instance().any_armed());
}

TEST_F(FaultTest, ArmFromSpecRejectsMalformedNumbers) {
  EXPECT_THROW(arm_from_spec("dist.halo:never"), Error);
  EXPECT_THROW(arm_from_spec("dist.halo:1:often"), Error);
  EXPECT_THROW(arm_from_spec("dist.halo:1:0.5:badseed"), Error);
  EXPECT_THROW(arm_from_spec("dist.halo:1:0.5:1:extra"), Error);
}

}  // namespace
}  // namespace polymg::fault
