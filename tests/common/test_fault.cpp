#include "polymg/common/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace polymg::fault {
namespace {

/// Every test leaves the process-global injector clean.
class FaultTest : public ::testing::Test {
protected:
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(FaultTest, NothingArmedNeverFails) {
  EXPECT_FALSE(FaultInjector::instance().any_armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(should_fail(kPoolAlloc));
    EXPECT_FALSE(should_fail(kKernelOutput));
    EXPECT_FALSE(should_fail(kDistHalo));
  }
}

TEST_F(FaultTest, BoundedCountFiresExactly) {
  auto& fi = FaultInjector::instance();
  fi.arm(kPoolAlloc, 3);
  EXPECT_TRUE(fi.any_armed());
  int fired = 0;
  for (int i = 0; i < 10; ++i) fired += should_fail(kPoolAlloc) ? 1 : 0;
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(fi.fired(kPoolAlloc), 3);
  EXPECT_FALSE(fi.any_armed());  // exhausted sites disarm themselves
}

TEST_F(FaultTest, SitesAreAddressedIndependently) {
  auto& fi = FaultInjector::instance();
  fi.arm(kDistHalo, 2);
  EXPECT_FALSE(should_fail(kPoolAlloc));
  EXPECT_FALSE(should_fail(kKernelOutput));
  EXPECT_TRUE(should_fail(kDistHalo));
  EXPECT_TRUE(should_fail(kDistHalo));
  EXPECT_FALSE(should_fail(kDistHalo));
  EXPECT_EQ(fi.fired(kPoolAlloc), 0);
  EXPECT_EQ(fi.fired(kDistHalo), 2);
}

TEST_F(FaultTest, ProbabilisticFiringIsDeterministic) {
  auto& fi = FaultInjector::instance();
  const auto draw = [&](std::uint64_t seed) {
    fi.reset();
    fi.arm(kKernelOutput, -1, 0.5, seed);
    std::vector<bool> pattern;
    pattern.reserve(64);
    for (int i = 0; i < 64; ++i) pattern.push_back(should_fail(kKernelOutput));
    return pattern;
  };
  const auto a = draw(42);
  const auto b = draw(42);
  EXPECT_EQ(a, b) << "same seed must reproduce the same fault pattern";
  const auto c = draw(43);
  EXPECT_NE(a, c) << "different seeds should differ somewhere in 64 draws";
  // p = 0.5 over 64 draws: both outcomes must occur.
  int hits = 0;
  for (bool x : a) hits += x ? 1 : 0;
  EXPECT_GT(hits, 0);
  EXPECT_LT(hits, 64);
}

TEST_F(FaultTest, UnboundedUntilDisarm) {
  auto& fi = FaultInjector::instance();
  fi.arm(kPoolAlloc, -1);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(should_fail(kPoolAlloc));
  fi.disarm(kPoolAlloc);
  EXPECT_FALSE(should_fail(kPoolAlloc));
  EXPECT_EQ(fi.fired(kPoolAlloc), 50) << "fired count survives disarm";
}

TEST_F(FaultTest, RearmKeepsFiredCounter) {
  auto& fi = FaultInjector::instance();
  fi.arm(kDistHalo, 1);
  EXPECT_TRUE(should_fail(kDistHalo));
  fi.arm(kDistHalo, 1);
  EXPECT_TRUE(should_fail(kDistHalo));
  EXPECT_EQ(fi.fired(kDistHalo), 2);
}

TEST_F(FaultTest, ResetClearsEverything) {
  auto& fi = FaultInjector::instance();
  fi.arm(kPoolAlloc, -1);
  ASSERT_TRUE(should_fail(kPoolAlloc));
  fi.reset();
  EXPECT_FALSE(fi.any_armed());
  EXPECT_FALSE(should_fail(kPoolAlloc));
  EXPECT_EQ(fi.fired(kPoolAlloc), 0);
}

TEST_F(FaultTest, ScopedFaultDisarmsOnExit) {
  {
    ScopedFault f(kKernelOutput, 5);
    EXPECT_TRUE(should_fail(kKernelOutput));
    EXPECT_EQ(f.fired(), 1);
  }
  EXPECT_FALSE(should_fail(kKernelOutput));
  // fired() survives the scope via the injector.
  EXPECT_EQ(FaultInjector::instance().fired(kKernelOutput), 1);
}

}  // namespace
}  // namespace polymg::fault
