#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>

#include "polymg/common/timer.hpp"

namespace polymg {
namespace {

TEST(Timer, ElapsedIsMonotone) {
  Timer t;
  const double a = t.elapsed();
  const double b = t.elapsed();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(Timer, ResetRestarts) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.reset();
  EXPECT_LT(t.elapsed(), 0.005);
}

TEST(Timer, ElapsedNsMatchesSeconds) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const std::int64_t ns = t.elapsed_ns();
  EXPECT_GE(ns, 1'000'000);  // at least 1 ms on any clock
  EXPECT_LT(ns, 10'000'000'000);
}

TEST(Timer, MinTimeOfRunsAllRepeats) {
  int calls = 0;
  const Stats s = min_time_of([&] { ++calls; }, 5);
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(s.n, 5);
  EXPECT_GE(s.min, 0.0);
  EXPECT_LT(s.min, 1.0);
  EXPECT_LE(s.min, s.mean);
  EXPECT_LE(s.mean, s.max);
  EXPECT_GE(s.stddev, 0.0);
}

TEST(Stats, WelfordMatchesClosedForm) {
  Stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.observe(x);
  EXPECT_EQ(s.n, 8);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Population stddev of the classic Welford example set is 2.
  EXPECT_NEAR(s.stddev, 2.0, 1e-12);
}

TEST(Stats, SingleObservationHasZeroStddev) {
  Stats s;
  s.observe(3.5);
  EXPECT_EQ(s.n, 1);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

}  // namespace
}  // namespace polymg
