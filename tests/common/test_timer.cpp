#include <gtest/gtest.h>

#include <thread>

#include "polymg/common/timer.hpp"

namespace polymg {
namespace {

TEST(Timer, ElapsedIsMonotone) {
  Timer t;
  const double a = t.elapsed();
  const double b = t.elapsed();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(Timer, ResetRestarts) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.reset();
  EXPECT_LT(t.elapsed(), 0.005);
}

TEST(Timer, MinTimeOfRunsAllRepeats) {
  int calls = 0;
  const double m = min_time_of([&] { ++calls; }, 5);
  EXPECT_EQ(calls, 5);
  EXPECT_GE(m, 0.0);
  EXPECT_LT(m, 1.0);
}

}  // namespace
}  // namespace polymg
