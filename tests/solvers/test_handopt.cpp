#include <gtest/gtest.h>

#include "polymg/solvers/handopt.hpp"
#include "polymg/solvers/metrics.hpp"
#include "polymg/solvers/poisson.hpp"

namespace polymg::solvers {
namespace {

TEST(HandOpt, TextbookRateOnPoisson2d) {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 127;
  cfg.levels = 6;  // coarsest 3x3
  cfg.n2 = 30;     // near-exact coarsest solve
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  HandOptSolver solver(cfg);
  double prev = residual_norm(p.v_view(), p.f_view(), p.n, p.h);
  for (int i = 0; i < 5; ++i) {
    solver.cycle(p.v_view(), p.f_view());
    const double r = residual_norm(p.v_view(), p.f_view(), p.n, p.h);
    EXPECT_LT(r, 0.15 * prev);
    prev = r;
  }
}

TEST(HandOpt, TextbookRateOnPoisson3d) {
  CycleConfig cfg;
  cfg.ndim = 3;
  cfg.n = 31;
  cfg.levels = 4;
  cfg.n2 = 30;
  PoissonProblem p = PoissonProblem::manufactured(3, cfg.n);
  HandOptSolver solver(cfg);
  double prev = residual_norm(p.v_view(), p.f_view(), p.n, p.h);
  for (int i = 0; i < 4; ++i) {
    solver.cycle(p.v_view(), p.f_view());
    const double r = residual_norm(p.v_view(), p.f_view(), p.n, p.h);
    EXPECT_LT(r, 0.25 * prev);
    prev = r;
  }
}

TEST(HandOpt, PaperConfigContractsSteadily) {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 127;
  cfg.levels = 4;  // the paper's benchmark hierarchy
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  HandOptSolver solver(cfg);
  double prev = residual_norm(p.v_view(), p.f_view(), p.n, p.h);
  double first = prev;
  for (int i = 0; i < 10; ++i) {
    solver.cycle(p.v_view(), p.f_view());
    const double r = residual_norm(p.v_view(), p.f_view(), p.n, p.h);
    EXPECT_LT(r, prev);
    prev = r;
  }
  EXPECT_LT(prev / first, 0.5);
}

TEST(HandOpt, PlutoVariantBitwiseMatchesPlain) {
  // Same arithmetic, only the schedule differs: results must be exact.
  for (int ndim : {2, 3}) {
    CycleConfig cfg;
    cfg.ndim = ndim;
    cfg.n = ndim == 2 ? 63 : 15;
    cfg.levels = 3;
    cfg.n1 = 10;
    cfg.n2 = 0;
    cfg.n3 = 0;
    PoissonProblem a = PoissonProblem::random_rhs(ndim, cfg.n, 31);
    PoissonProblem b = PoissonProblem::random_rhs(ndim, cfg.n, 31);
    HandOptSolver plain(cfg, /*time_tiled=*/false);
    HandOptSolver pluto(cfg, /*time_tiled=*/true, {4, 12});
    plain.cycle(a.v_view(), a.f_view());
    pluto.cycle(b.v_view(), b.f_view());
    EXPECT_EQ(grid::max_diff(a.v_view(), b.v_view(), a.domain()), 0.0)
        << ndim << "d";
  }
}

TEST(HandOpt, WCycleMatchesVOrBetter) {
  CycleConfig v;
  v.ndim = 2;
  v.n = 127;
  v.levels = 6;
  v.n2 = 30;
  CycleConfig w = v;
  w.kind = CycleKind::W;
  PoissonProblem pv = PoissonProblem::manufactured(2, v.n);
  PoissonProblem pw = PoissonProblem::manufactured(2, w.n);
  HandOptSolver sv(v), sw(w);
  for (int i = 0; i < 3; ++i) {
    sv.cycle(pv.v_view(), pv.f_view());
    sw.cycle(pw.v_view(), pw.f_view());
  }
  EXPECT_LE(residual_norm(pw.v_view(), pw.f_view(), pw.n, pw.h),
            residual_norm(pv.v_view(), pv.f_view(), pv.n, pv.h) * 1.05);
}

}  // namespace
}  // namespace polymg::solvers
