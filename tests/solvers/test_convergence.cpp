// Numerical behaviour. Two regimes are covered:
//  - Deep hierarchies with an (almost) exact coarsest solve must contract
//    at textbook weighted-Jacobi V-cycle rates (~0.1 per cycle in 2-d).
//  - The paper's benchmark configurations (4 levels, fixed 4-4-4 or
//    10-0-0 sweeps, Jacobi everywhere) trade convergence for arithmetic
//    intensity; there we assert steady monotone contraction at the rate
//    this algorithm actually achieves.
#include <gtest/gtest.h>

#include "polymg/opt/compile.hpp"
#include "polymg/runtime/executor.hpp"
#include "polymg/solvers/metrics.hpp"
#include "polymg/solvers/poisson.hpp"

namespace polymg::solvers {
namespace {

using opt::CompileOptions;
using opt::Variant;

/// Run `iters` cycles, returning the residual after each.
std::vector<double> run_cycles(const CycleConfig& cfg, PoissonProblem& p,
                               Variant v, int iters) {
  runtime::Executor ex(
      opt::compile(build_cycle(cfg), CompileOptions::for_variant(v, cfg.ndim)));
  std::vector<double> res;
  res.push_back(residual_norm(p.v_view(), p.f_view(), p.n, p.h));
  for (int i = 0; i < iters; ++i) {
    const std::vector<grid::View> ext = {p.v_view(), p.f_view()};
    ex.run(ext);
    grid::copy_region(p.v_view(), ex.output_view(0), p.domain());
    res.push_back(residual_norm(p.v_view(), p.f_view(), p.n, p.h));
  }
  return res;
}

CycleConfig deep2d() {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 127;
  cfg.levels = 6;  // coarsest 3x3
  cfg.n2 = 30;     // near-exact coarsest solve
  return cfg;
}

TEST(Convergence, TextbookRate2d) {
  CycleConfig cfg = deep2d();
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  const auto res = run_cycles(cfg, p, Variant::OptPlus, 6);
  for (std::size_t i = 1; i < res.size(); ++i) {
    EXPECT_LT(res[i], 0.15 * res[i - 1])
        << "cycle " << i << ": " << res[i - 1] << " -> " << res[i];
  }
  EXPECT_LT(res.back() / res.front(), 1e-5);
}

TEST(Convergence, TextbookRate3d) {
  CycleConfig cfg;
  cfg.ndim = 3;
  cfg.n = 31;
  cfg.levels = 4;  // coarsest 3x3x3
  cfg.n2 = 30;
  PoissonProblem p = PoissonProblem::manufactured(3, cfg.n);
  const auto res = run_cycles(cfg, p, Variant::OptPlus, 5);
  for (std::size_t i = 1; i < res.size(); ++i) {
    EXPECT_LT(res[i], 0.25 * res[i - 1]);
  }
}

TEST(Convergence, PaperConfig444ContractsSteadily) {
  // The paper's 4-level 4-4-4 setting: the coarsest level is only
  // Jacobi-smoothed, so the globally smooth mode limits the rate.
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 127;
  cfg.levels = 4;
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  const auto res = run_cycles(cfg, p, Variant::OptPlus, 10);
  for (std::size_t i = 1; i < res.size(); ++i) {
    EXPECT_LT(res[i], res[i - 1]);  // strictly monotone
  }
  EXPECT_LT(res.back() / res.front(), 0.5);
}

TEST(Convergence, WCycleAtLeastAsGoodAsV) {
  CycleConfig v = deep2d();
  CycleConfig w = v;
  w.kind = CycleKind::W;
  PoissonProblem pv = PoissonProblem::manufactured(2, v.n);
  PoissonProblem pw = PoissonProblem::manufactured(2, w.n);
  const double rv = run_cycles(v, pv, Variant::OptPlus, 3).back();
  const double rw = run_cycles(w, pw, Variant::OptPlus, 3).back();
  EXPECT_LE(rw, rv * 1.05);
}

TEST(Convergence, MoreSmoothingConvergesFasterPerCycle) {
  CycleConfig a = deep2d();
  a.n1 = a.n3 = 1;
  CycleConfig b = deep2d();
  b.n1 = b.n3 = 4;
  PoissonProblem pa = PoissonProblem::manufactured(2, a.n);
  PoissonProblem pb = PoissonProblem::manufactured(2, b.n);
  const double ra = run_cycles(a, pa, Variant::OptPlus, 3).back();
  const double rb = run_cycles(b, pb, Variant::OptPlus, 3).back();
  EXPECT_LT(rb, ra);
}

TEST(Convergence, SolutionApproachesManufactured) {
  CycleConfig cfg = deep2d();
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  (void)run_cycles(cfg, p, Variant::OptPlus, 12);
  // After convergence the remaining error is the O(h²) discretization
  // error of the 5-point scheme.
  const double err = error_norm(p.v_view(), p.exact_view(), p.n);
  EXPECT_LT(err, 5.0 * p.h * p.h);
}

TEST(Convergence, TenZeroZeroStillContracts) {
  // 10-0-0 never smooths the coarsest level: contraction comes from the
  // pre-smoothing alone and is correspondingly slower, but must persist.
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 3;
  cfg.n1 = 10;
  cfg.n2 = 0;
  cfg.n3 = 0;
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  const auto res = run_cycles(cfg, p, Variant::OptPlus, 8);
  for (std::size_t i = 1; i < res.size(); ++i) {
    EXPECT_LT(res[i], res[i - 1]);
  }
  EXPECT_LT(res.back() / res.front(), 0.8);
}

}  // namespace
}  // namespace polymg::solvers
