// Cross-variant equivalence: every execution variant of the compiled
// pipeline (naive, opt, opt+, dtile-opt+, and every storage-flag subset)
// must produce the same cycle result; the hand-optimized baselines must
// agree to floating-point reassociation tolerance.
#include <gtest/gtest.h>

#include "polymg/opt/compile.hpp"
#include "polymg/runtime/executor.hpp"
#include "polymg/solvers/handopt.hpp"
#include "polymg/solvers/poisson.hpp"

namespace polymg {
namespace {

using opt::CompileOptions;
using opt::Variant;
using solvers::CycleConfig;
using solvers::CycleKind;
using solvers::PoissonProblem;

grid::Buffer run_dsl(const CycleConfig& cfg, PoissonProblem& p,
                     const CompileOptions& opts) {
  auto plan = opt::compile(solvers::build_cycle(cfg), opts);
  runtime::Executor ex(std::move(plan));
  const std::vector<grid::View> ext = {p.v_view(), p.f_view()};
  ex.run(ext);
  grid::Buffer out = grid::make_grid(p.domain());
  grid::copy_region(grid::View::over(out.data(), p.domain()),
                    ex.output_view(0), p.domain());
  return out;
}

struct Case {
  int ndim;
  CycleKind kind;
  int n1, n2, n3;
};

class EquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(EquivalenceTest, AllVariantsMatchNaive) {
  const Case c = GetParam();
  CycleConfig cfg;
  cfg.ndim = c.ndim;
  cfg.n = c.ndim == 2 ? 63 : 15;
  cfg.levels = 3;
  cfg.kind = c.kind;
  cfg.n1 = c.n1;
  cfg.n2 = c.n2;
  cfg.n3 = c.n3;

  PoissonProblem p =
      PoissonProblem::random_rhs(cfg.ndim, cfg.n, /*seed=*/12345);
  grid::Buffer ref =
      run_dsl(cfg, p, CompileOptions::for_variant(Variant::Naive, cfg.ndim));
  const grid::View ref_view = grid::View::over(ref.data(), p.domain());

  for (Variant v :
       {Variant::Opt, Variant::OptPlus, Variant::DtileOptPlus}) {
    CompileOptions opts = CompileOptions::for_variant(v, cfg.ndim);
    // Small tiles stress the halo logic.
    opts.tile = cfg.ndim == 2 ? poly::TileSizes{16, 32, 0}
                              : poly::TileSizes{8, 8, 16};
    grid::Buffer out = run_dsl(cfg, p, opts);
    const double diff = grid::max_diff(
        grid::View::over(out.data(), p.domain()), ref_view, p.domain());
    EXPECT_LE(diff, 1e-13) << "variant " << opt::to_string(v);
  }
}

TEST_P(EquivalenceTest, StorageFlagSubsetsMatchNaive) {
  const Case c = GetParam();
  CycleConfig cfg;
  cfg.ndim = c.ndim;
  cfg.n = c.ndim == 2 ? 31 : 15;
  cfg.levels = 3;
  cfg.kind = c.kind;
  cfg.n1 = c.n1;
  cfg.n2 = c.n2;
  cfg.n3 = c.n3;

  PoissonProblem p = PoissonProblem::random_rhs(cfg.ndim, cfg.n, 777);
  grid::Buffer ref =
      run_dsl(cfg, p, CompileOptions::for_variant(Variant::Naive, cfg.ndim));
  const grid::View ref_view = grid::View::over(ref.data(), p.domain());

  // The Fig. 11b breakdown configurations.
  for (int mask = 0; mask < 8; ++mask) {
    CompileOptions opts = CompileOptions::for_variant(Variant::OptPlus,
                                                      cfg.ndim);
    opts.intra_group_reuse = (mask & 1) != 0;
    opts.pooled_allocation = (mask & 2) != 0;
    opts.inter_group_reuse = (mask & 4) != 0;
    grid::Buffer out = run_dsl(cfg, p, opts);
    const double diff = grid::max_diff(
        grid::View::over(out.data(), p.domain()), ref_view, p.domain());
    EXPECT_LE(diff, 1e-13) << "storage mask " << mask;
  }
}

TEST_P(EquivalenceTest, HandOptMatchesDsl) {
  const Case c = GetParam();
  CycleConfig cfg;
  cfg.ndim = c.ndim;
  cfg.n = c.ndim == 2 ? 63 : 15;
  cfg.levels = 3;
  cfg.kind = c.kind;
  cfg.n1 = c.n1;
  cfg.n2 = c.n2;
  cfg.n3 = c.n3;

  PoissonProblem p = PoissonProblem::random_rhs(cfg.ndim, cfg.n, 999);
  grid::Buffer dsl =
      run_dsl(cfg, p, CompileOptions::for_variant(Variant::Naive, cfg.ndim));

  for (bool pluto : {false, true}) {
    PoissonProblem q = PoissonProblem::random_rhs(cfg.ndim, cfg.n, 999);
    solvers::HandOptSolver hand(cfg, pluto);
    hand.cycle(q.v_view(), q.f_view());
    const double diff =
        grid::max_diff(q.v_view(), grid::View::over(dsl.data(), p.domain()),
                       p.interior());
    EXPECT_LE(diff, 1e-11) << "handopt" << (pluto ? "+pluto" : "");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cycles, EquivalenceTest,
    ::testing::Values(Case{2, CycleKind::V, 4, 4, 4},
                      Case{2, CycleKind::V, 10, 0, 0},
                      Case{2, CycleKind::W, 4, 4, 4},
                      Case{2, CycleKind::W, 10, 0, 0},
                      Case{2, CycleKind::F, 3, 2, 1},
                      Case{3, CycleKind::V, 4, 4, 4},
                      Case{3, CycleKind::V, 10, 0, 0},
                      Case{3, CycleKind::W, 4, 4, 4},
                      Case{3, CycleKind::W, 10, 0, 0},
                      Case{3, CycleKind::F, 2, 2, 2}),
    [](const ::testing::TestParamInfo<Case>& info) {
      const Case& c = info.param;
      return std::to_string(c.ndim) + "D_" +
             (c.kind == CycleKind::V   ? "V"
              : c.kind == CycleKind::W ? "W"
                                       : "F") +
             "_" + std::to_string(c.n1) + std::to_string(c.n2) +
             std::to_string(c.n3);
    });

}  // namespace
}  // namespace polymg
