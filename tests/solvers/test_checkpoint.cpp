// solvers::Checkpoint: pool-backed, checksummed snapshots. Round trips
// are bit-exact, slot buffers are reused without fresh allocation, and a
// payload corrupted in storage is detected at restore — never silently
// handed back to the solver.
#include "polymg/solvers/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "polymg/common/alloc_hook.hpp"
#include "polymg/common/error.hpp"
#include "polymg/common/fault.hpp"
#include "polymg/runtime/pool.hpp"

namespace polymg::solvers {
namespace {

class CheckpointTest : public ::testing::Test {
protected:
  void SetUp() override { fault::FaultInjector::instance().reset(); }
  void TearDown() override { fault::FaultInjector::instance().reset(); }
};

std::vector<double> ramp(std::size_t n, double scale) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = scale * static_cast<double>(i);
  return v;
}

TEST_F(CheckpointTest, RoundTripIsBitExact) {
  runtime::MemoryPool pool;
  Checkpoint ckpt(pool);
  std::vector<double> a = ramp(257, 0.125);
  std::vector<double> b = ramp(64, -3.5);

  ckpt.begin(/*next_cycle=*/7, /*rung=*/2);
  ckpt.save(0, a.data(), static_cast<index_t>(a.size()));
  ckpt.save(1, b.data(), static_cast<index_t>(b.size()));
  ckpt.set_meta(0, 1e-9);
  ckpt.set_meta(5, 42.0);
  ckpt.commit();
  EXPECT_TRUE(ckpt.valid());
  EXPECT_EQ(ckpt.next_cycle(), 7);
  EXPECT_EQ(ckpt.rung(), 2);
  EXPECT_EQ(ckpt.slots(), 2u);

  // Clobber the sources, then restore — every byte must come back.
  std::vector<double> a2(a.size(), -1.0), b2(b.size(), -1.0);
  ASSERT_TRUE(ckpt.restore(0, a2.data(), static_cast<index_t>(a2.size())));
  ASSERT_TRUE(ckpt.restore(1, b2.data(), static_cast<index_t>(b2.size())));
  EXPECT_EQ(std::memcmp(a.data(), a2.data(), a.size() * sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(b.data(), b2.data(), b.size() * sizeof(double)), 0);
  EXPECT_DOUBLE_EQ(ckpt.meta(0), 1e-9);
  EXPECT_DOUBLE_EQ(ckpt.meta(5), 42.0);
}

TEST_F(CheckpointTest, RecaptureReusesSlotBuffersWithoutAllocating) {
  runtime::MemoryPool pool;
  Checkpoint ckpt(pool);
  std::vector<double> a = ramp(512, 1.0);
  ckpt.begin(0);
  ckpt.save(0, a.data(), static_cast<index_t>(a.size()));
  ckpt.set_meta(0, 1.0);
  ckpt.commit();

  // Second generation, same sizes: the zero-allocation steady state the
  // cycle loop relies on between checkpoints and across them.
  const std::uint64_t before = allocation_count();
  for (int gen = 1; gen <= 3; ++gen) {
    ckpt.begin(gen);
    ckpt.save(0, a.data(), static_cast<index_t>(a.size()));
    ckpt.set_meta(0, static_cast<double>(gen));
    ckpt.commit();
  }
  EXPECT_EQ(allocation_count(), before)
      << "re-capturing stable slot sizes must not allocate";
}

TEST_F(CheckpointTest, ChecksumDetectsCorruptedPayload) {
  runtime::MemoryPool pool;
  Checkpoint ckpt(pool);
  std::vector<double> a = ramp(128, 2.0);
  fault::FaultInjector::instance().arm(fault::kCheckpointCorrupt, 1);
  ckpt.begin(3);
  ckpt.save(0, a.data(), static_cast<index_t>(a.size()));
  ckpt.commit();  // the injected flip lands here, after checksumming
  EXPECT_EQ(
      fault::FaultInjector::instance().fired(fault::kCheckpointCorrupt), 1);

  std::vector<double> out(a.size(), -7.0);
  EXPECT_FALSE(ckpt.restore(0, out.data(), static_cast<index_t>(out.size())))
      << "a flipped payload byte must fail the checksum";
  for (double x : out) {
    ASSERT_EQ(x, -7.0) << "a failed restore must leave dst untouched";
  }

  // A clean re-capture recovers the slot.
  ckpt.begin(4);
  ckpt.save(0, a.data(), static_cast<index_t>(a.size()));
  ckpt.commit();
  EXPECT_TRUE(ckpt.restore(0, out.data(), static_cast<index_t>(out.size())));
  EXPECT_EQ(std::memcmp(a.data(), out.data(), a.size() * sizeof(double)), 0);
}

TEST_F(CheckpointTest, ChecksumIsSensitiveToSingleBitFlips) {
  std::vector<double> a = ramp(99, 0.01);
  const std::uint64_t h0 = payload_checksum(a.data(), a.size());
  unsigned char* bytes = reinterpret_cast<unsigned char*>(a.data());
  bytes[500] ^= 0x01;  // one bit, mid-payload
  EXPECT_NE(payload_checksum(a.data(), a.size()), h0);
  bytes[500] ^= 0x01;
  EXPECT_EQ(payload_checksum(a.data(), a.size()), h0);
}

TEST_F(CheckpointTest, ProtocolMisuseIsRejected) {
  runtime::MemoryPool pool;
  Checkpoint ckpt(pool);
  std::vector<double> a = ramp(8, 1.0);
  ckpt.begin(0);
  // Slots must be appended densely.
  EXPECT_THROW(ckpt.save(1, a.data(), 8), Error);
  ckpt.save(0, a.data(), 8);
  // Restore before commit is a protocol violation, not a soft failure.
  std::vector<double> out(8);
  EXPECT_THROW((void)ckpt.restore(0, out.data(), 8), Error);
  ckpt.commit();
  // Size mismatch is a caller bug.
  EXPECT_THROW((void)ckpt.restore(0, out.data(), 4), Error);
  EXPECT_THROW((void)ckpt.meta(0), Error) << "meta index never set";
}

TEST_F(CheckpointTest, BeginInvalidatesUntilCommit) {
  runtime::MemoryPool pool;
  Checkpoint ckpt(pool);
  std::vector<double> a = ramp(16, 1.0);
  ckpt.begin(0);
  ckpt.save(0, a.data(), 16);
  ckpt.commit();
  EXPECT_TRUE(ckpt.valid());
  ckpt.begin(5);  // a crash between begin and commit leaves no half-state
  EXPECT_FALSE(ckpt.valid());
  ckpt.save(0, a.data(), 16);
  ckpt.commit();
  EXPECT_TRUE(ckpt.valid());
  EXPECT_EQ(ckpt.next_cycle(), 5);
}

TEST_F(CheckpointTest, ReleaseReturnsBuffersToThePool) {
  runtime::MemoryPool pool;
  std::vector<double> a = ramp(64, 1.0);
  {
    Checkpoint ckpt(pool);
    ckpt.begin(0);
    ckpt.save(0, a.data(), 64);
    ckpt.commit();
    ckpt.release();
    EXPECT_FALSE(ckpt.valid());
    EXPECT_EQ(ckpt.slots(), 0u);
  }  // destructor also releases — double release must be harmless
}

}  // namespace
}  // namespace polymg::solvers
