#include <gtest/gtest.h>

#include "polymg/opt/compile.hpp"
#include "polymg/runtime/executor.hpp"
#include "polymg/solvers/fmg.hpp"
#include "polymg/solvers/metrics.hpp"

namespace polymg::solvers {
namespace {

CycleConfig deep(index_t n, int levels) {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = n;
  cfg.levels = levels;
  cfg.n2 = 20;
  return cfg;
}

TEST(Fmg, OnePassReachesDiscretizationAccuracy) {
  PoissonProblem p = PoissonProblem::manufactured(2, 127);
  FmgOptions opts;
  opts.cycles_per_level = 2;
  const FmgResult r = fmg_solve(p, deep(127, 6), opts);
  EXPECT_LT(r.residual, 1e-2 * r.initial_residual);
  // The point of FMG: one nested-iteration pass leaves only O(h²) error.
  EXPECT_LT(error_norm(p.v_view(), p.exact_view(), p.n), 10.0 * p.h * p.h);
}

TEST(Fmg, BeatsSameWorkOfPlainVCycles) {
  // FMG with one cycle per level vs the same number of finest-level
  // V-cycles starting from zero: FMG lands at a much smaller error.
  PoissonProblem p_fmg = PoissonProblem::manufactured(2, 127);
  FmgOptions opts;
  opts.cycles_per_level = 1;
  const FmgResult fmg = fmg_solve(p_fmg, deep(127, 6), opts);

  PoissonProblem p_v = PoissonProblem::manufactured(2, 127);
  runtime::Executor ex(opt::compile(
      build_cycle(deep(127, 6)),
      opt::CompileOptions::for_variant(opt::Variant::OptPlus, 2)));
  const std::vector<grid::View> ext = {p_v.v_view(), p_v.f_view()};
  ex.run(ext);
  grid::copy_region(p_v.v_view(), ex.output_view(0), p_v.domain());
  const double v_res = residual_norm(p_v.v_view(), p_v.f_view(), p_v.n,
                                     p_v.h);
  EXPECT_LT(fmg.residual, v_res);
}

TEST(Fmg, WorksIn3d) {
  PoissonProblem p = PoissonProblem::manufactured(3, 31);
  CycleConfig cfg;
  cfg.ndim = 3;
  cfg.n = 31;
  cfg.levels = 4;
  cfg.n2 = 20;
  FmgOptions opts;
  opts.cycles_per_level = 2;
  const FmgResult r = fmg_solve(p, cfg, opts);
  EXPECT_LT(r.residual, 5e-2 * r.initial_residual);
}

TEST(Fmg, RejectsGeometryMismatch) {
  PoissonProblem p = PoissonProblem::manufactured(2, 63);
  EXPECT_THROW((void)fmg_solve(p, deep(127, 6), {}), Error);
}

}  // namespace
}  // namespace polymg::solvers
