// NaN-awareness of the solver metrics: a poisoned iterate must never
// report a healthy (small, finite) norm.
#include "polymg/solvers/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "polymg/solvers/poisson.hpp"

namespace polymg::solvers {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Metrics, ResidualNormFiniteOnCleanProblem) {
  PoissonProblem p = PoissonProblem::manufactured(2, 31);
  const double r = residual_norm(p.v_view(), p.f_view(), p.n, p.h);
  EXPECT_TRUE(std::isfinite(r));
  EXPECT_GT(r, 0.0);
}

TEST(Metrics, ResidualNormPropagatesNaNIterate) {
  PoissonProblem p = PoissonProblem::manufactured(2, 31);
  p.v_view().at2(16, 16) = kNaN;
  EXPECT_TRUE(std::isnan(residual_norm(p.v_view(), p.f_view(), p.n, p.h)));
}

TEST(Metrics, ResidualNormCollapsesInfToNaN) {
  PoissonProblem p = PoissonProblem::manufactured(2, 31);
  p.v_view().at2(3, 7) = kInf;
  EXPECT_TRUE(std::isnan(residual_norm(p.v_view(), p.f_view(), p.n, p.h)));
}

TEST(Metrics, ResidualNormPropagatesNaNRhs3d) {
  PoissonProblem p = PoissonProblem::manufactured(3, 15);
  p.f_view().at3(8, 8, 8) = kNaN;
  EXPECT_TRUE(std::isnan(residual_norm(p.v_view(), p.f_view(), p.n, p.h)));
}

TEST(Metrics, ErrorNormPropagatesNaN) {
  PoissonProblem p = PoissonProblem::manufactured(2, 31);
  EXPECT_TRUE(std::isfinite(error_norm(p.v_view(), p.exact_view(), p.n)));
  p.v_view().at2(30, 1) = kNaN;
  EXPECT_TRUE(std::isnan(error_norm(p.v_view(), p.exact_view(), p.n)));
}

TEST(Metrics, MaxNormAndMaxDiffPropagateNaN) {
  PoissonProblem p = PoissonProblem::manufactured(2, 15);
  const poly::Box interior = p.interior();
  EXPECT_TRUE(std::isfinite(grid::max_norm(p.f_view(), interior)));
  p.f_view().at2(5, 5) = kNaN;
  EXPECT_TRUE(std::isnan(grid::max_norm(p.f_view(), interior)));
  EXPECT_TRUE(std::isnan(grid::max_diff(p.f_view(), p.v_view(), interior)));
  // ...even when later points are larger than anything seen before.
  p.f_view().at2(6, 5) = 1e300;
  EXPECT_TRUE(std::isnan(grid::max_norm(p.f_view(), interior)));
}

TEST(Metrics, BoundaryNaNOutsideInteriorIsIgnored) {
  // The norms only read the interior plus the stencil ring it touches;
  // a NaN in an untouched corner must not leak in.
  PoissonProblem p = PoissonProblem::manufactured(2, 31);
  p.v_view().at2(0, 0) = kNaN;  // corner: no interior stencil reads it
  EXPECT_TRUE(std::isfinite(residual_norm(p.v_view(), p.f_view(), p.n, p.h)));
  EXPECT_TRUE(std::isfinite(error_norm(p.v_view(), p.exact_view(), p.n)));
}

}  // namespace
}  // namespace polymg::solvers
