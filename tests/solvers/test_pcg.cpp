#include <gtest/gtest.h>

#include "polymg/solvers/metrics.hpp"
#include "polymg/solvers/pcg.hpp"

namespace polymg::solvers {
namespace {

CycleConfig precond(int ndim, index_t n) {
  CycleConfig cfg;
  cfg.ndim = ndim;
  cfg.n = n;
  cfg.levels = ndim == 2 ? 5 : 3;
  cfg.n1 = cfg.n3 = 2;
  cfg.n2 = 10;
  return cfg;
}

TEST(Pcg, GridBlasBasics) {
  PoissonProblem p = PoissonProblem::manufactured(2, 31);
  // <exact, exact> > 0 and A u ≈ f for the manufactured pair.
  EXPECT_GT(dot_interior(p.exact_view(), p.exact_view(), p.n), 0.0);
  grid::Buffer av = grid::make_grid(p.domain());
  poisson_apply(grid::View::over(av.data(), p.domain()), p.exact_view(), p.n,
                p.h);
  // Discretization error only: |A u_exact - f| = O(h²)·|f|.
  double max_rel = 0.0;
  for (index_t i = 1; i <= p.n; ++i) {
    for (index_t j = 1; j <= p.n; ++j) {
      max_rel = std::max(
          max_rel,
          std::abs(grid::View::over(av.data(), p.domain()).at2(i, j) -
                   p.f_view().at2(i, j)));
    }
  }
  EXPECT_LT(max_rel, 60.0 * p.h * p.h);  // f ~ 2π²·u, so scale ~ 20
}

TEST(Pcg, MgPreconditionedBeatsPlainCg) {
  // A random right-hand side excites the whole spectrum (a manufactured
  // eigenmode RHS would let plain CG converge in one step).
  PoissonProblem p_cg = PoissonProblem::random_rhs(2, 127, 5150);
  PoissonProblem p_mg = PoissonProblem::random_rhs(2, 127, 5150);
  PcgOptions plain;
  plain.use_mg_preconditioner = false;
  plain.tolerance = 1e-8;
  PcgOptions mg;
  mg.tolerance = 1e-8;

  const PcgResult r_cg = pcg_solve(p_cg, precond(2, 127), plain);
  const PcgResult r_mg = pcg_solve(p_mg, precond(2, 127), mg);
  ASSERT_TRUE(r_mg.converged);
  EXPECT_LT(r_mg.iterations, 15);  // MG-PCG: ~handful of iterations
  if (r_cg.converged) {
    EXPECT_LT(r_mg.iterations, r_cg.iterations / 3);
  }
}

TEST(Pcg, Converges3d) {
  PoissonProblem p = PoissonProblem::manufactured(3, 31);
  PcgOptions opts;
  opts.tolerance = 1e-8;
  const PcgResult r = pcg_solve(p, precond(3, 31), opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations, 15);
  // Residual history must be broadly decreasing.
  EXPECT_LT(r.history.back(), 1e-6 * r.history.front());
}

TEST(Pcg, SolutionMatchesManufactured) {
  PoissonProblem p = PoissonProblem::manufactured(2, 127);
  PcgOptions opts;
  opts.tolerance = 1e-10;
  const PcgResult r = pcg_solve(p, precond(2, 127), opts);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(error_norm(p.v_view(), p.exact_view(), p.n), 5.0 * p.h * p.h);
}

}  // namespace
}  // namespace polymg::solvers
