// Resilient guarded_solve: checkpoint/restart after an injected crash is
// bit-exact, the SDC guard catches a silent bit-flip and rolls back, a
// corrupt checkpoint falls through to the degradation ladder, and the
// residual history stays bounded.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "polymg/common/fault.hpp"
#include "polymg/solvers/guarded.hpp"
#include "polymg/solvers/metrics.hpp"

namespace polymg::solvers {
namespace {

class ResilientSolveTest : public ::testing::Test {
protected:
  void SetUp() override { fault::FaultInjector::instance().reset(); }
  void TearDown() override { fault::FaultInjector::instance().reset(); }
};

CycleConfig healthy2d() {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 4;
  cfg.n2 = 20;
  return cfg;
}

GuardPolicy resilient_policy() {
  GuardPolicy policy;
  policy.checkpoint_cadence = 2;
  policy.max_rollbacks = 3;
  return policy;
}

bool same_bits(const grid::Buffer& a, const grid::Buffer& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST_F(ResilientSolveTest, CheckpointingAloneDoesNotChangeTheSolve) {
  const CycleConfig cfg = healthy2d();
  PoissonProblem plain = PoissonProblem::manufactured(2, cfg.n);
  PoissonProblem ckpt = PoissonProblem::manufactured(2, cfg.n);

  const SolveReport r0 = guarded_solve(cfg, plain, 1e-8);
  const SolveReport r1 = guarded_solve(cfg, ckpt, 1e-8, resilient_policy());
  EXPECT_TRUE(r1.converged) << r1.summary();
  EXPECT_EQ(r0.total_cycles, r1.total_cycles);
  EXPECT_GT(r1.checkpoint_writes, 0);
  EXPECT_EQ(r1.checkpoint_restores, 0);
  EXPECT_TRUE(same_bits(plain.v, ckpt.v))
      << "snapshotting must be observation, not perturbation";
}

TEST_F(ResilientSolveTest, CrashRestartContinuesBitExactly) {
  const CycleConfig cfg = healthy2d();
  PoissonProblem clean = PoissonProblem::manufactured(2, cfg.n);
  PoissonProblem crashed = PoissonProblem::manufactured(2, cfg.n);
  const GuardPolicy policy = resilient_policy();

  const SolveReport base = guarded_solve(cfg, clean, 1e-8, policy);
  ASSERT_TRUE(base.converged) << base.summary();

  // One crash at a deterministic pseudo-random cycle mid-solve: the loop
  // rewinds to the last snapshot and re-runs the lost cycles on the same
  // plan, so the final iterate is the unfailed one, bit for bit.
  fault::FaultInjector::instance().arm(fault::kSolveCrash, 1, 0.5, 11);
  const SolveReport rep = guarded_solve(cfg, crashed, 1e-8, policy);
  ASSERT_EQ(fault::FaultInjector::instance().fired(fault::kSolveCrash), 1)
      << "the crash must actually fire for this test to mean anything";
  EXPECT_TRUE(rep.converged) << rep.summary();
  ASSERT_EQ(rep.attempts.size(), 1u)
      << "a survivable crash must not cost a ladder rung";
  EXPECT_EQ(rep.attempts[0].crashes, 1);
  EXPECT_EQ(rep.attempts[0].rollbacks, 1);
  EXPECT_EQ(rep.checkpoint_restores, 1);
  EXPECT_TRUE(same_bits(clean.v, crashed.v))
      << "restart must reproduce the unfailed iterate exactly";
  EXPECT_DOUBLE_EQ(rep.final_residual, base.final_residual);
}

TEST_F(ResilientSolveTest, SdcBitflipIsCaughtAndRolledBack) {
  const CycleConfig cfg = healthy2d();
  PoissonProblem clean = PoissonProblem::manufactured(2, cfg.n);
  PoissonProblem hit = PoissonProblem::manufactured(2, cfg.n);
  GuardPolicy policy = resilient_policy();
  policy.checkpoint_cadence = 1;

  const SolveReport base = guarded_solve(cfg, clean, 1e-8, policy);
  ASSERT_TRUE(base.converged);

  // Flip the top exponent bit of one kernel output mid-solve: the value
  // stays finite (invisible to the executor's non-finite scan) but the
  // residual explodes by orders of magnitude — exactly the jump the SDC
  // guard watches for. The probability is low so the flip lands several
  // cycles in: a flip at cycle 0, when the residual is still O(initial),
  // is numerically just a perturbed first guess and below any jump
  // threshold.
  fault::FaultInjector::instance().arm(fault::kKernelBitflip, 1, 0.01, 17);
  const SolveReport rep = guarded_solve(cfg, hit, 1e-8, policy);
  ASSERT_EQ(fault::FaultInjector::instance().fired(fault::kKernelBitflip), 1);
  EXPECT_TRUE(rep.converged) << rep.summary();
  ASSERT_EQ(rep.attempts.size(), 1u)
      << "a rolled-back SDC must not cost a ladder rung";
  EXPECT_EQ(rep.sdc_detected, 1);
  EXPECT_EQ(rep.attempts[0].sdc_detected, 1);
  EXPECT_EQ(rep.attempts[0].executor_fallbacks, 0)
      << "the health scan must NOT have seen the finite corruption";
  EXPECT_GE(rep.checkpoint_restores, 1);
  EXPECT_TRUE(same_bits(clean.v, hit.v))
      << "rollback + re-run must reproduce the clean iterate exactly";
}

TEST_F(ResilientSolveTest, CorruptCheckpointFallsThroughToReferencePlan) {
  const CycleConfig cfg = healthy2d();
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  GuardPolicy policy = resilient_policy();

  // The very first snapshot is corrupted in storage; the crash then finds
  // nothing restorable. That attempt dies with CheckpointCorrupt and the
  // ordinary ladder takes over at the reference plan.
  fault::FaultInjector::instance().arm(fault::kCheckpointCorrupt, 1);
  fault::FaultInjector::instance().arm(fault::kSolveCrash, 1);
  const SolveReport rep = guarded_solve(cfg, p, 1e-8, policy);
  EXPECT_TRUE(rep.converged) << rep.summary();
  ASSERT_GE(rep.attempts.size(), 2u);
  EXPECT_TRUE(rep.attempts[0].threw);
  EXPECT_NE(rep.attempts[0].error.find("checkpoint"), std::string::npos)
      << rep.attempts[0].error;
  EXPECT_EQ(rep.attempts[1].kind, RungKind::ReferencePlan);
  EXPECT_TRUE(rep.attempts[1].converged);
}

TEST_F(ResilientSolveTest, RollbackBudgetLimitsRepeatedCrashes) {
  const CycleConfig cfg = healthy2d();
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  GuardPolicy policy = resilient_policy();
  policy.max_rollbacks = 2;

  // A crash on every cycle: two are absorbed, the third ends the attempt
  // (budget spent, nothing restorable) and the ladder continues — where
  // the still-armed site keeps firing, so no rung can finish. The report
  // must say so honestly rather than loop forever.
  fault::FaultInjector::instance().arm(fault::kSolveCrash, -1);
  const SolveReport rep = guarded_solve(cfg, p, 1e-8, policy);
  fault::FaultInjector::instance().disarm(fault::kSolveCrash);
  EXPECT_FALSE(rep.converged);
  EXPECT_EQ(rep.attempts[0].rollbacks, 2);
  for (const SolveAttempt& a : rep.attempts) EXPECT_TRUE(a.threw);
}

TEST_F(ResilientSolveTest, ResidualHistoryIsBounded) {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 31;
  cfg.levels = 2;
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  GuardPolicy policy;
  policy.max_cycles = 30;
  policy.history_limit = 8;
  const SolveReport rep = guarded_solve(cfg, p, 1e-300, policy);
  EXPECT_GT(rep.total_cycles, 8);
  EXPECT_LE(rep.residual_history.size(), 8u)
      << "history must be a ring of the last history_limit entries";
  // The retained tail is the most recent run of residuals.
  EXPECT_DOUBLE_EQ(rep.residual_history.back(), rep.final_residual);
}

}  // namespace
}  // namespace polymg::solvers
