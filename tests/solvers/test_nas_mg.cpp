#include <gtest/gtest.h>

#include "polymg/opt/compile.hpp"
#include "polymg/runtime/executor.hpp"
#include "polymg/solvers/nas_mg.hpp"

namespace polymg::solvers {
namespace {

using opt::CompileOptions;
using opt::Variant;

NasMgConfig small() {
  NasMgConfig cfg;
  cfg.n = 16;
  cfg.levels = 3;
  return cfg;
}

TEST(NasMg, ReferenceReducesResidual) {
  const NasMgConfig cfg = small();
  const poly::Box dom = poly::Box::cube(3, 0, cfg.n + 1);
  grid::Buffer u = grid::make_grid(dom), v = grid::make_grid(dom);
  grid::View uv = grid::View::over(u.data(), dom);
  grid::View vv = grid::View::over(v.data(), dom);
  nas_fill_rhs(vv, cfg.n);
  NasMgReference ref(cfg);
  double prev = ref.residual_norm(uv, vv);
  for (int i = 0; i < 4; ++i) {
    ref.iterate(uv, vv);
    const double r = ref.residual_norm(uv, vv);
    EXPECT_LT(r, prev);
    prev = r;
  }
  EXPECT_LT(prev, 0.2 * ref.residual_norm(grid::View::over(
                            grid::make_grid(dom).data(), dom),
                        vv));
}

TEST(NasMg, DslMatchesReference) {
  const NasMgConfig cfg = small();
  const poly::Box dom = poly::Box::cube(3, 0, cfg.n + 1);

  grid::Buffer u_ref = grid::make_grid(dom), v = grid::make_grid(dom);
  grid::View vv = grid::View::over(v.data(), dom);
  nas_fill_rhs(vv, cfg.n);
  NasMgReference ref(cfg);

  grid::Buffer u_dsl = grid::make_grid(dom);
  runtime::Executor ex(opt::compile(
      build_nas_mg_pipeline(cfg), CompileOptions::for_variant(
                                      Variant::OptPlus, 3)));

  for (int i = 0; i < 3; ++i) {
    ref.iterate(grid::View::over(u_ref.data(), dom), vv);
    const std::vector<grid::View> ext = {
        grid::View::over(u_dsl.data(), dom), vv};
    ex.run(ext);
    grid::copy_region(grid::View::over(u_dsl.data(), dom), ex.output_view(0),
                      dom);
    EXPECT_LE(grid::max_diff(grid::View::over(u_ref.data(), dom),
                             grid::View::over(u_dsl.data(), dom), dom),
              1e-12)
        << "iteration " << i;
  }
}

TEST(NasMg, AllVariantsAgree) {
  const NasMgConfig cfg = small();
  const poly::Box dom = poly::Box::cube(3, 0, cfg.n + 1);
  grid::Buffer v = grid::make_grid(dom);
  nas_fill_rhs(grid::View::over(v.data(), dom), cfg.n);

  grid::Buffer ref_out;
  for (Variant var : {Variant::Naive, Variant::Opt, Variant::OptPlus}) {
    grid::Buffer u = grid::make_grid(dom);
    runtime::Executor ex(opt::compile(
        build_nas_mg_pipeline(cfg), CompileOptions::for_variant(var, 3)));
    const std::vector<grid::View> ext = {grid::View::over(u.data(), dom),
                                         grid::View::over(v.data(), dom)};
    ex.run(ext);
    grid::Buffer out = grid::make_grid(dom);
    grid::copy_region(grid::View::over(out.data(), dom), ex.output_view(0),
                      dom);
    if (var == Variant::Naive) {
      ref_out = std::move(out);
    } else {
      EXPECT_LE(grid::max_diff(grid::View::over(ref_out.data(), dom),
                               grid::View::over(out.data(), dom), dom),
                1e-13)
          << opt::to_string(var);
    }
  }
}

TEST(NasMg, ConfigValidation) {
  NasMgConfig cfg;
  cfg.n = 20;  // not divisible by 2^(levels-1)
  cfg.levels = 4;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.n = 16;
  cfg.levels = 4;  // coarsest interior 2: OK
  cfg.validate();
  cfg.levels = 5;  // coarsest interior 1: too small
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(NasMg, PipelineStageCount) {
  // 1 resid + (L-1) rprj3 + 1 coarsest psinv + 3·(L-2) mid-level up-steps
  // + 4 finest up-steps.
  const NasMgConfig cfg = small();
  const ir::Pipeline p = build_nas_mg_pipeline(cfg);
  const int L = cfg.levels;
  EXPECT_EQ(p.num_stages(), 1 + (L - 1) + 1 + 3 * (L - 2) + 4);
}

}  // namespace
}  // namespace polymg::solvers
