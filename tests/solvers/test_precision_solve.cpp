// Mixed-precision guarded solves: convergence parity with full double,
// the precision oracle catching injected float-path corruption, and the
// unconditional invariance of the double path.
#include <gtest/gtest.h>

#include "polymg/common/fault.hpp"
#include "polymg/grid/ops.hpp"
#include "polymg/runtime/guarded.hpp"
#include "polymg/solvers/guarded.hpp"
#include "polymg/solvers/metrics.hpp"

namespace polymg {
namespace {

using solvers::CycleConfig;
using solvers::GuardPolicy;
using solvers::PoissonProblem;
using solvers::RungKind;
using solvers::SolveReport;

/// Deep hierarchy (coarsest 3^d) with a near-exact coarsest solve, the
/// convergence suite's "textbook rate" regime — a handful of cycles to
/// 1e-8, so the +2-iteration parity bound is meaningful.
CycleConfig deep_cfg(int ndim, poly::index_t n, int levels) {
  CycleConfig cfg;
  cfg.ndim = ndim;
  cfg.n = n;
  cfg.levels = levels;
  cfg.n2 = 30;
  return cfg;
}

TEST(PrecisionSolve, MixedMatchesDoubleIterationsWithinTwo) {
  // Defect correction keeps the iterate and all norms double, so the
  // mixed solve must reach the same relative tolerance in at most a
  // couple of extra cycles on the paper's problem classes.
  struct Case {
    int ndim;
    poly::index_t n;
    int levels;
  };
  for (const Case& c : {Case{2, 63, 5}, Case{2, 127, 6}, Case{3, 31, 4}}) {
    const CycleConfig cfg = deep_cfg(c.ndim, c.n, c.levels);
    GuardPolicy policy;
    policy.precision_check_cadence = 4;

    PoissonProblem pd = PoissonProblem::manufactured(c.ndim, c.n);
    opt::CompileOptions dbl;
    const SolveReport rd = guarded_solve(cfg, pd, 1e-8, policy, dbl);
    ASSERT_TRUE(rd.converged) << rd.summary();

    PoissonProblem pm = PoissonProblem::manufactured(c.ndim, c.n);
    opt::CompileOptions mix;
    mix.precision.mode = opt::Precision::Mixed;
    const SolveReport rm = guarded_solve(cfg, pm, 1e-8, policy, mix);
    ASSERT_TRUE(rm.converged) << rm.summary();

    EXPECT_EQ(rm.attempts.size(), 1u) << rm.summary();
    EXPECT_TRUE(rm.attempts[0].mixed_precision);
    EXPECT_EQ(rm.precision_violations, 0) << rm.summary();
    EXPECT_LE(rm.total_cycles, rd.total_cycles + 2)
        << c.ndim << "-d n=" << c.n << "\n"
        << rm.summary();
    // Same tolerance actually reached, not a weaker one.
    EXPECT_LE(rm.final_residual, 1e-8 * rm.initial_residual);
  }
}

TEST(PrecisionSolve, OracleRunsAtTheConfiguredCadence) {
  const CycleConfig cfg = deep_cfg(2, 63, 5);
  GuardPolicy policy;
  policy.precision_check_cadence = 2;
  PoissonProblem p = PoissonProblem::manufactured(2, 63);
  opt::CompileOptions mix;
  mix.precision.mode = opt::Precision::Mixed;
  const SolveReport r = guarded_solve(cfg, p, 1e-8, policy, mix);
  ASSERT_TRUE(r.converged) << r.summary();
  EXPECT_EQ(r.precision_checks, r.total_cycles / 2) << r.summary();
  EXPECT_EQ(r.precision_violations, 0);
}

TEST(PrecisionSolve, InjectedCorruptionDetectedAndDegradedToDouble) {
  // Arm the precision.corrupt site: one residual value is blown out of
  // scale before the float cycle consumes it — finite, so the
  // non-finite health scan stays silent. The oracle must flag the
  // violation and the ladder must rebuild the same configuration in
  // full double, which then converges.
  const CycleConfig cfg = deep_cfg(2, 63, 5);
  GuardPolicy policy;
  policy.precision_check_cadence = 1;  // check every cycle
  PoissonProblem p = PoissonProblem::manufactured(2, 63);
  opt::CompileOptions mix;
  mix.precision.mode = opt::Precision::Mixed;
  fault::ScopedFault inject(fault::kPrecisionCorrupt, 1);
  const SolveReport r = guarded_solve(cfg, p, 1e-8, policy, mix);
  EXPECT_EQ(inject.fired(), 1);
  ASSERT_TRUE(r.converged) << r.summary();
  EXPECT_GE(r.precision_violations, 1) << r.summary();
  ASSERT_GE(r.attempts.size(), 2u) << r.summary();
  EXPECT_TRUE(r.attempts[0].mixed_precision);
  EXPECT_GE(r.attempts[0].precision_violations, 1);
  EXPECT_EQ(r.attempts[1].kind, RungKind::PrecisionFallback);
  EXPECT_FALSE(r.attempts[1].mixed_precision);
  EXPECT_TRUE(r.attempts.back().converged);
}

TEST(PrecisionSolve, DisabledOracleRunsNoChecks) {
  const CycleConfig cfg = deep_cfg(2, 63, 5);
  GuardPolicy policy;
  policy.precision_check_cadence = 0;
  PoissonProblem p = PoissonProblem::manufactured(2, 63);
  opt::CompileOptions mix;
  mix.precision.mode = opt::Precision::Mixed;
  const SolveReport r = guarded_solve(cfg, p, 1e-8, policy, mix);
  ASSERT_TRUE(r.converged) << r.summary();
  EXPECT_EQ(r.precision_checks, 0);
}

TEST(PrecisionSolve, DoubleSolveIsDeterministicAndUntouchedByMixedPath) {
  // The default (Double) path must not engage any mixed machinery and
  // must stay bit-reproducible run to run.
  const CycleConfig cfg = deep_cfg(2, 63, 5);
  PoissonProblem p1 = PoissonProblem::manufactured(2, 63);
  PoissonProblem p2 = PoissonProblem::manufactured(2, 63);
  const SolveReport r1 = guarded_solve(cfg, p1, 1e-8);
  const SolveReport r2 = guarded_solve(cfg, p2, 1e-8);
  ASSERT_TRUE(r1.converged);
  EXPECT_EQ(r1.precision_checks, 0);
  EXPECT_FALSE(r1.attempts[0].mixed_precision);
  EXPECT_EQ(r1.total_cycles, r2.total_cycles);
  EXPECT_EQ(r1.final_residual, r2.final_residual);  // bitwise
  EXPECT_EQ(grid::max_diff(p1.v_view(), p2.v_view(), p1.domain()), 0.0);
}

TEST(PrecisionSolve, GuardFallbackPromotesFloatExternals) {
  // A mixed plan's in-run reference fallback re-executes the invocation
  // on the full-double reference plan; the guard must promote the float
  // externals instead of tripping the executor's dtype precondition.
  const CycleConfig cfg = deep_cfg(2, 63, 5);
  opt::CompileOptions mix;
  mix.precision.mode = opt::Precision::Mixed;
  runtime::GuardedExecutor ex(solvers::build_cycle(cfg), mix);
  ASSERT_TRUE(ex.has_optimized_plan());

  const poly::Box dom = poly::Box::cube(2, 0, 64);
  // Bind externals of exactly the dtypes the mixed plan expects.
  grid::Buffer v64;
  grid::BufferF32 v32, f32;
  grid::Buffer f64;
  std::vector<grid::View> ext(2);
  if (ex.plan().dtype_of_external(0) == grid::DType::F32) {
    v32 = grid::make_grid_f32(dom);
    ext[0] = grid::View::over(v32.data(), dom);
  } else {
    v64 = grid::make_grid(dom);
    ext[0] = grid::View::over(v64.data(), dom);
  }
  if (ex.plan().dtype_of_external(1) == grid::DType::F32) {
    f32 = grid::make_grid_f32(dom);
    ext[1] = grid::View::over(f32.data(), dom);
  } else {
    f64 = grid::make_grid(dom);
    ext[1] = grid::View::over(f64.data(), dom);
  }
  grid::fill_region(ext[1], poly::Box::cube(2, 1, 63),
                    [](poly::index_t i, poly::index_t j, poly::index_t) {
                      return 1.0 + 0.001 * static_cast<double>(i * 64 + j);
                    });

  // Healthy run first (optimized path).
  ex.run(ext);
  EXPECT_FALSE(ex.last_run_fell_back());
  // Poison the next optimized run's output: the health scan fails and
  // the same externals re-run on the double reference plan.
  fault::ScopedFault poison(fault::kKernelOutput, 1);
  ex.run(ext);
  EXPECT_TRUE(ex.last_run_fell_back());
  EXPECT_EQ(ex.report().fallback_runs, 1);
}

}  // namespace
}  // namespace polymg
