// Alternative smoothers (GSRB, Chebyshev): numerical behaviour and
// cross-variant equivalence. GSRB half-sweeps are parity-piecewise chain
// stages, so they exercise the parity kernels inside overlapped tiles
// AND the alternating-step path of the split/diamond time-tiling
// executor.
#include <gtest/gtest.h>

#include "polymg/opt/compile.hpp"
#include "polymg/runtime/executor.hpp"
#include "polymg/solvers/metrics.hpp"
#include "polymg/solvers/poisson.hpp"

namespace polymg::solvers {
namespace {

using opt::CompileOptions;
using opt::Variant;

std::vector<double> run_cycles(const CycleConfig& cfg, PoissonProblem& p,
                               Variant v, int iters) {
  runtime::Executor ex(opt::compile(
      build_cycle(cfg), CompileOptions::for_variant(v, cfg.ndim)));
  std::vector<double> res;
  res.push_back(residual_norm(p.v_view(), p.f_view(), p.n, p.h));
  for (int i = 0; i < iters; ++i) {
    const std::vector<grid::View> ext = {p.v_view(), p.f_view()};
    ex.run(ext);
    grid::copy_region(p.v_view(), ex.output_view(0), p.domain());
    res.push_back(residual_norm(p.v_view(), p.f_view(), p.n, p.h));
  }
  return res;
}

CycleConfig deep(SmootherKind s, int ndim = 2) {
  CycleConfig cfg;
  cfg.ndim = ndim;
  cfg.n = ndim == 2 ? 127 : 31;
  cfg.levels = ndim == 2 ? 6 : 4;
  cfg.n2 = 30;
  cfg.smoother = s;
  return cfg;
}

TEST(Smoothers, GsrbBeatsJacobiPerCycle) {
  PoissonProblem pj = PoissonProblem::manufactured(2, 127);
  PoissonProblem pg = PoissonProblem::manufactured(2, 127);
  const auto rj =
      run_cycles(deep(SmootherKind::Jacobi), pj, Variant::OptPlus, 3);
  const auto rg =
      run_cycles(deep(SmootherKind::GSRB), pg, Variant::OptPlus, 3);
  EXPECT_LT(rg.back(), rj.back());
  // GS V(4,4) should contract at ~0.1 per cycle or better.
  for (std::size_t i = 1; i < rg.size(); ++i) {
    EXPECT_LT(rg[i], 0.12 * rg[i - 1]);
  }
}

TEST(Smoothers, ChebyshevContractsWell) {
  PoissonProblem p = PoissonProblem::manufactured(2, 127);
  const auto r =
      run_cycles(deep(SmootherKind::Chebyshev), p, Variant::OptPlus, 3);
  for (std::size_t i = 1; i < r.size(); ++i) {
    EXPECT_LT(r[i], 0.25 * r[i - 1]);
  }
}

TEST(Smoothers, Gsrb3dConverges) {
  PoissonProblem p = PoissonProblem::manufactured(3, 31);
  const auto r =
      run_cycles(deep(SmootherKind::GSRB, 3), p, Variant::OptPlus, 3);
  for (std::size_t i = 1; i < r.size(); ++i) {
    EXPECT_LT(r[i], 0.2 * r[i - 1]);
  }
}

class SmootherEquivalence
    : public ::testing::TestWithParam<std::tuple<SmootherKind, int>> {};

TEST_P(SmootherEquivalence, AllVariantsMatchNaive) {
  const auto [kind, ndim] = GetParam();
  CycleConfig cfg;
  cfg.ndim = ndim;
  cfg.n = ndim == 2 ? 63 : 15;
  cfg.levels = 3;
  cfg.smoother = kind;
  PoissonProblem p = PoissonProblem::random_rhs(ndim, cfg.n, 2024);

  auto run_one = [&](Variant v) {
    CompileOptions opts = CompileOptions::for_variant(v, ndim);
    opts.tile = ndim == 2 ? poly::TileSizes{16, 32, 0}
                          : poly::TileSizes{8, 8, 16};
    runtime::Executor ex(opt::compile(build_cycle(cfg), opts));
    const std::vector<grid::View> ext = {p.v_view(), p.f_view()};
    ex.run(ext);
    grid::Buffer out = grid::make_grid(p.domain());
    grid::copy_region(grid::View::over(out.data(), p.domain()),
                      ex.output_view(0), p.domain());
    return out;
  };

  grid::Buffer ref = run_one(Variant::Naive);
  for (Variant v : {Variant::Opt, Variant::OptPlus, Variant::DtileOptPlus}) {
    grid::Buffer out = run_one(v);
    EXPECT_LE(grid::max_diff(grid::View::over(ref.data(), p.domain()),
                             grid::View::over(out.data(), p.domain()),
                             p.domain()),
              1e-13)
        << opt::to_string(v);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SmootherEquivalence,
    ::testing::Values(std::tuple{SmootherKind::GSRB, 2},
                      std::tuple{SmootherKind::GSRB, 3},
                      std::tuple{SmootherKind::Chebyshev, 2},
                      std::tuple{SmootherKind::Chebyshev, 3}),
    [](const ::testing::TestParamInfo<std::tuple<SmootherKind, int>>& info) {
      const SmootherKind kind = std::get<0>(info.param);
      const int ndim = std::get<1>(info.param);
      return std::string(kind == SmootherKind::GSRB ? "GSRB" : "Chebyshev") +
             "_" + std::to_string(ndim) + "D";
    });

TEST(Smoothers, GsrbChainsTimeTileable) {
  // GSRB chains alternate red/black definitions; the dtile variant must
  // still recognize and split-tile them (radius-1 self dependence holds).
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 3;
  cfg.smoother = SmootherKind::GSRB;
  const auto plan =
      opt::compile(build_cycle(cfg),
                   CompileOptions::for_variant(Variant::DtileOptPlus, 2));
  int time_tiled = 0;
  for (const auto& g : plan.groups) {
    time_tiled += g.exec == opt::GroupExec::TimeTiled;
  }
  EXPECT_GT(time_tiled, 0);
}

}  // namespace
}  // namespace polymg::solvers
