// Variable-coefficient (finite-volume flavoured) multigrid: the paper's
// "also applicable to a finite volume discretization" claim, exercised
// end to end. The β-weighted Jacobi stages divide by a coefficient sum,
// so these pipelines run through the bytecode fallback path — every
// optimizer variant must still agree exactly.
#include <gtest/gtest.h>

#include "polymg/opt/compile.hpp"
#include "polymg/runtime/executor.hpp"
#include "polymg/solvers/varcoef.hpp"

namespace polymg::solvers {
namespace {

using opt::CompileOptions;
using opt::Variant;

std::vector<double> run_cycles(const CycleConfig& cfg, VarCoefProblem& p,
                               Variant v, int iters) {
  VarCoefLevels levels(cfg, p);
  runtime::Executor ex(opt::compile(
      build_varcoef_cycle(cfg), CompileOptions::for_variant(v, cfg.ndim)));
  std::vector<double> res{varcoef_residual_norm(p)};
  for (int i = 0; i < iters; ++i) {
    const std::vector<grid::View> ext = levels.externals(p);
    ex.run(ext);
    grid::copy_region(p.v_view(), ex.output_view(0), p.domain());
    res.push_back(varcoef_residual_norm(p));
  }
  return res;
}

TEST(VarCoef, UnitCoefficientsReduceToPoisson) {
  // β ≡ 1 makes the operator the standard 5-point Laplacian: the
  // variable-coefficient residual of the exact-Poisson iterate is tiny.
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 4;
  cfg.n2 = 30;
  VarCoefProblem p = VarCoefProblem::smooth_coefficients(2, cfg.n, 3);
  for (int d = 0; d < 2; ++d) {
    grid::fill_region(p.beta_view(d), p.domain(),
                      [](auto, auto, auto) { return 1.0; });
  }
  const auto res = run_cycles(cfg, p, Variant::OptPlus, 8);
  EXPECT_LT(res.back(), 1e-4 * res.front());
}

TEST(VarCoef, SmoothCoefficientsConverge) {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 4;
  cfg.n2 = 30;
  VarCoefProblem p = VarCoefProblem::smooth_coefficients(2, cfg.n, 5);
  const auto res = run_cycles(cfg, p, Variant::OptPlus, 6);
  for (std::size_t i = 1; i < res.size(); ++i) {
    EXPECT_LT(res[i], 0.5 * res[i - 1]) << "cycle " << i;
  }
}

TEST(VarCoef, SmoothCoefficients3d) {
  CycleConfig cfg;
  cfg.ndim = 3;
  cfg.n = 15;
  cfg.levels = 2;
  cfg.n2 = 30;
  VarCoefProblem p = VarCoefProblem::smooth_coefficients(3, cfg.n, 6);
  const auto res = run_cycles(cfg, p, Variant::OptPlus, 5);
  EXPECT_LT(res.back(), 0.05 * res.front());
}

TEST(VarCoef, HighContrastInclusionStillContracts) {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 3;
  cfg.n1 = cfg.n3 = 6;
  cfg.n2 = 40;
  VarCoefProblem p = VarCoefProblem::inclusion(2, cfg.n, 100.0, 7);
  const auto res = run_cycles(cfg, p, Variant::OptPlus, 10);
  for (std::size_t i = 1; i < res.size(); ++i) {
    EXPECT_LT(res[i], res[i - 1]);  // monotone despite the jump
  }
  EXPECT_LT(res.back(), 0.2 * res.front());
}

TEST(VarCoef, AllVariantsAgreeOnBytecodePath) {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 31;
  cfg.levels = 3;
  VarCoefProblem ref_p = VarCoefProblem::inclusion(2, cfg.n, 10.0, 11);
  const auto ref = run_cycles(cfg, ref_p, Variant::Naive, 1);
  grid::Buffer expected = ref_p.v.clone();

  for (Variant v : {Variant::Opt, Variant::OptPlus, Variant::DtileOptPlus}) {
    VarCoefProblem p = VarCoefProblem::inclusion(2, cfg.n, 10.0, 11);
    (void)run_cycles(cfg, p, v, 1);
    EXPECT_LE(grid::max_diff(p.v_view(),
                             grid::View::over(expected.data(), p.domain()),
                             p.domain()),
              1e-14)
        << opt::to_string(v);
  }
}

TEST(VarCoef, CoarsenedCoefficientsAveraged) {
  VarCoefProblem p = VarCoefProblem::smooth_coefficients(2, 15, 1);
  const auto coarse = coarsen_coefficients(p.beta, 2, 15);
  ASSERT_EQ(coarse.size(), 2u);
  const poly::Box cdom = poly::Box::cube(2, 0, 8);
  EXPECT_EQ(coarse[0].size(), static_cast<std::size_t>(cdom.count()));
  // Spot check one face: coarse β0(2,3) = ½(β0_f(3,6) + β0_f(4,6)).
  const grid::View cv =
      grid::View::over(const_cast<double*>(coarse[0].data()), cdom);
  EXPECT_NEAR(cv.at2(2, 3),
              0.5 * (p.beta_view(0).at2(3, 6) + p.beta_view(0).at2(4, 6)),
              1e-15);
}

TEST(VarCoef, SmootherStagesUseBytecodeFallback) {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 31;
  cfg.levels = 2;
  const auto plan = opt::compile(build_varcoef_cycle(cfg),
                                 CompileOptions::for_variant(Variant::OptPlus, 2));
  bool any_nonlinear = false;
  for (const auto& lw : plan.lowered) {
    any_nonlinear = any_nonlinear || !lw.all_linear;
  }
  EXPECT_TRUE(any_nonlinear);  // the β division is not affine
}

}  // namespace
}  // namespace polymg::solvers
