#include <gtest/gtest.h>

#include "polymg/solvers/cycles.hpp"

namespace polymg::solvers {
namespace {

CycleConfig cfg(int ndim, CycleKind kind, int n1, int n2, int n3,
                int levels = 4, index_t n = 63) {
  CycleConfig c;
  c.ndim = ndim;
  c.n = n;
  c.levels = levels;
  c.kind = kind;
  c.n1 = n1;
  c.n2 = n2;
  c.n3 = n3;
  return c;
}

TEST(Cycles, PaperTable3StageCounts) {
  // Table 3 of the paper, four-level hierarchies.
  EXPECT_EQ(expected_stages(cfg(2, CycleKind::V, 4, 4, 4)), 40);
  EXPECT_EQ(expected_stages(cfg(2, CycleKind::V, 10, 0, 0)), 42);
  EXPECT_EQ(expected_stages(cfg(2, CycleKind::W, 4, 4, 4)), 100);
  EXPECT_EQ(expected_stages(cfg(2, CycleKind::W, 10, 0, 0)), 98);
  EXPECT_EQ(expected_stages(cfg(3, CycleKind::V, 4, 4, 4, 4, 31)), 40);
  EXPECT_EQ(expected_stages(cfg(3, CycleKind::W, 10, 0, 0, 4, 31)), 98);
}

TEST(Cycles, BuilderMatchesExpectedStages) {
  for (CycleKind k : {CycleKind::V, CycleKind::W, CycleKind::F}) {
    for (auto [n1, n2, n3] : {std::tuple{4, 4, 4}, std::tuple{10, 0, 0},
                              std::tuple{2, 1, 3}, std::tuple{1, 0, 1}}) {
      const CycleConfig c = cfg(2, k, n1, n2, n3, 3, 31);
      const ir::Pipeline p = build_cycle(c);
      EXPECT_EQ(p.num_stages(), expected_stages(c))
          << "kind " << static_cast<int>(k) << " " << n1 << n2 << n3;
    }
  }
}

TEST(Cycles, LevelGeometry) {
  const CycleConfig c = cfg(2, CycleKind::V, 4, 4, 4, 4, 1023);
  EXPECT_EQ(c.level_n(3), 1023);
  EXPECT_EQ(c.level_n(2), 511);
  EXPECT_EQ(c.level_n(0), 127);
  EXPECT_DOUBLE_EQ(c.level_h(3), 1.0 / 1024);
  EXPECT_GT(c.smoother_weight(0), c.smoother_weight(3));
}

TEST(Cycles, ValidationRejectsBadConfigs) {
  CycleConfig c = cfg(2, CycleKind::V, 4, 4, 4);
  c.n = 64;  // n+1 == 65 not divisible by 2^(levels-1)
  EXPECT_THROW(c.validate(), Error);
  c = cfg(4, CycleKind::V, 4, 4, 4);
  EXPECT_THROW(c.validate(), Error);
  c = cfg(2, CycleKind::V, 0, 0, 0);
  EXPECT_THROW(c.validate(), Error);
}

TEST(Cycles, PipelineShapeSanity) {
  const ir::Pipeline p = build_cycle(cfg(2, CycleKind::V, 4, 4, 4, 3, 31));
  p.validate();
  ASSERT_EQ(p.externals.size(), 2u);
  EXPECT_EQ(p.externals[0].name, "V");
  ASSERT_EQ(p.outputs.size(), 1u);
  // The output is the last post-smoothing step at the finest level.
  const ir::FunctionDecl& out = p.funcs[p.outputs[0]];
  EXPECT_EQ(out.level, 2);
  EXPECT_EQ(out.construct, ir::ConstructKind::TStencilStep);
  // Exactly one Restrict and one Interp per finer level of a V-cycle.
  int restricts = 0, interps = 0;
  for (const auto& f : p.funcs) {
    restricts += f.construct == ir::ConstructKind::Restrict;
    interps += f.construct == ir::ConstructKind::Interp;
  }
  EXPECT_EQ(restricts, 2);
  EXPECT_EQ(interps, 2);
}

TEST(Cycles, SmootherOnlyPipeline) {
  CycleConfig c = cfg(2, CycleKind::V, 4, 4, 4, 1, 31);
  const ir::Pipeline p = build_smoother_only(c, 6);
  EXPECT_EQ(p.num_stages(), 6);
  for (const auto& f : p.funcs) {
    EXPECT_EQ(f.construct, ir::ConstructKind::TStencilStep);
  }
}

TEST(Cycles, WCycleVisitsCoarseTwicePerLevel) {
  const ir::Pipeline v = build_cycle(cfg(2, CycleKind::V, 1, 1, 1, 3, 31));
  const ir::Pipeline w = build_cycle(cfg(2, CycleKind::W, 1, 1, 1, 3, 31));
  EXPECT_GT(w.num_stages(), v.num_stages());
}

}  // namespace
}  // namespace polymg::solvers
