// guarded_solve: the degradation ladder end to end. Each scenario drives
// a real failure mode (divergent damping, divergent GSRB over-relaxation,
// stagnation, injected runtime faults) and checks both the outcome and
// the honesty of the report.
#include "polymg/solvers/guarded.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "polymg/common/fault.hpp"
#include "polymg/solvers/metrics.hpp"

namespace polymg::solvers {
namespace {

class GuardedSolveTest : public ::testing::Test {
protected:
  void SetUp() override { fault::FaultInjector::instance().reset(); }
  void TearDown() override { fault::FaultInjector::instance().reset(); }
};

CycleConfig healthy2d() {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 4;
  cfg.n2 = 20;  // near-exact coarsest solve: fast contraction
  return cfg;
}

TEST_F(GuardedSolveTest, HealthyConfigConvergesOnFirstAttempt) {
  const CycleConfig cfg = healthy2d();
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  const SolveReport rep = guarded_solve(cfg, p, 1e-8);
  EXPECT_TRUE(rep.converged) << rep.summary();
  ASSERT_EQ(rep.attempts.size(), 1u);
  EXPECT_EQ(rep.attempts[0].description, "as configured");
  EXPECT_TRUE(rep.attempts[0].converged);
  EXPECT_EQ(rep.attempts[0].executor_fallbacks, 0);
  EXPECT_LE(rep.final_residual, 1e-8 * rep.initial_residual);
  // The iterate left in p is the converged one.
  EXPECT_NEAR(residual_norm(p.v_view(), p.f_view(), p.n, p.h),
              rep.final_residual, 1e-12);
}

TEST_F(GuardedSolveTest, DivergentOmegaRecoversViaBackoff) {
  CycleConfig cfg = healthy2d();
  cfg.omega = 1.9;  // weighted Jacobi diverges for omega > 1
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  GuardPolicy policy;
  policy.max_attempts = 4;
  const SolveReport rep = guarded_solve(cfg, p, 1e-6, policy);
  EXPECT_TRUE(rep.converged) << rep.summary();
  ASSERT_GE(rep.attempts.size(), 3u);
  EXPECT_EQ(rep.attempts[0].trend, health::Trend::Diverging);
  EXPECT_EQ(rep.attempts[1].description, "reference plan");
  EXPECT_EQ(rep.attempts[1].trend, health::Trend::Diverging)
      << "the reference plan runs the same divergent numerics";
  // omega 1.9 -> 0.95 is stable; the backoff rung must finish the solve.
  EXPECT_TRUE(rep.attempts.back().converged);
  EXPECT_NE(rep.attempts.back().description.find("omega"), std::string::npos);
  EXPECT_TRUE(std::isfinite(rep.final_residual));
  EXPECT_LE(rep.final_residual, 1e-6 * rep.initial_residual);
}

TEST_F(GuardedSolveTest, DivergentGsrbRecoversViaSmootherDowngrade) {
  CycleConfig cfg = healthy2d();
  cfg.smoother = SmootherKind::GSRB;
  cfg.gsrb_omega = 2.1;  // SOR diverges for relaxation factors >= 2
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  GuardPolicy policy;
  policy.max_attempts = 4;
  const SolveReport rep = guarded_solve(cfg, p, 1e-6, policy);
  EXPECT_TRUE(rep.converged) << rep.summary();
  // Ladder: as configured (diverges), reference plan (diverges),
  // GSRB -> Jacobi (converges with the default omega).
  ASSERT_GE(rep.attempts.size(), 3u);
  EXPECT_EQ(rep.attempts[2].description, "GSRB -> Jacobi");
  EXPECT_TRUE(rep.attempts[2].converged);
}

TEST_F(GuardedSolveTest, StagnationIsReportedHonestly) {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 31;
  cfg.levels = 1;    // no coarse correction: smooth modes barely move
  cfg.omega = 0.01;  // and the smoother is nearly a no-op
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  GuardPolicy policy;
  policy.max_attempts = 2;
  policy.max_cycles = 20;
  const SolveReport rep = guarded_solve(cfg, p, 1e-10, policy);
  EXPECT_FALSE(rep.converged) << rep.summary();
  ASSERT_EQ(rep.attempts.size(), 2u);
  for (const SolveAttempt& a : rep.attempts) {
    EXPECT_EQ(a.trend, health::Trend::Stagnating) << a.description;
    EXPECT_FALSE(a.converged);
    EXPECT_LT(a.cycles, policy.max_cycles)
        << "the monitor should cut the attempt short";
  }
  EXPECT_TRUE(std::isfinite(rep.final_residual));
  EXPECT_NE(rep.summary().find("NOT converged"), std::string::npos);
}

TEST_F(GuardedSolveTest, PoolFaultIsAbsorbedByExecutorFallback) {
  const CycleConfig cfg = healthy2d();
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  fault::FaultInjector::instance().arm(fault::kPoolAlloc, 1);
  const SolveReport rep = guarded_solve(cfg, p, 1e-8);
  EXPECT_TRUE(rep.converged) << rep.summary();
  ASSERT_EQ(rep.attempts.size(), 1u)
      << "a one-shot pool fault must not cost a ladder rung";
  EXPECT_EQ(rep.attempts[0].executor_fallbacks, 1);
  EXPECT_EQ(fault::FaultInjector::instance().fired(fault::kPoolAlloc), 1);
}

TEST_F(GuardedSolveTest, KernelFaultIsAbsorbedByExecutorFallback) {
  const CycleConfig cfg = healthy2d();
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  fault::FaultInjector::instance().arm(fault::kKernelOutput, 1);
  const SolveReport rep = guarded_solve(cfg, p, 1e-8);
  EXPECT_TRUE(rep.converged) << rep.summary();
  ASSERT_EQ(rep.attempts.size(), 1u);
  EXPECT_EQ(rep.attempts[0].executor_fallbacks, 1);
}

TEST_F(GuardedSolveTest, RetriesRestartFromTheInitialIterate) {
  // If a later attempt started from the diverged iterate of an earlier
  // one it could never converge; the report proves each attempt began
  // at the caller's residual.
  CycleConfig cfg = healthy2d();
  cfg.omega = 1.9;
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  const SolveReport rep = guarded_solve(cfg, p, 1e-6);
  ASSERT_GE(rep.attempts.size(), 2u);
  for (const SolveAttempt& a : rep.attempts) {
    EXPECT_DOUBLE_EQ(a.first_residual, rep.initial_residual)
        << a.description;
  }
}

TEST_F(GuardedSolveTest, ExhaustedCycleBudgetDoesNotWalkTheLadder) {
  // Healthy contraction that simply needs more than max_cycles: every
  // ladder rung is a weaker configuration, so retrying could only end
  // with a worse residual. The solve must stop after one attempt.
  const CycleConfig cfg = healthy2d();
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  GuardPolicy policy;
  policy.max_cycles = 2;  // far too few for 1e-10
  const SolveReport rep = guarded_solve(cfg, p, 1e-10, policy);
  EXPECT_FALSE(rep.converged);
  ASSERT_EQ(rep.attempts.size(), 1u) << rep.summary();
  EXPECT_EQ(rep.attempts[0].trend, health::Trend::Converging);
  EXPECT_EQ(rep.total_cycles, 2);
  EXPECT_LT(rep.final_residual, rep.initial_residual)
      << "the partial progress must be kept, not degraded away";
}

TEST_F(GuardedSolveTest, HistoryRingBoundsMemoryAndReportsDrops) {
  // Unattended long-running solves must not grow the residual history
  // without bound: the ring keeps the last history_limit entries and the
  // report says how many older ones were evicted.
  const CycleConfig cfg = healthy2d();
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  GuardPolicy policy;
  policy.history_limit = 4;
  policy.max_cycles = 10;
  const SolveReport rep = guarded_solve(cfg, p, 1e-300, policy);
  ASSERT_GT(rep.total_cycles, 4) << rep.summary();
  EXPECT_EQ(rep.residual_history.size(), 4u);
  EXPECT_EQ(rep.history_dropped, rep.total_cycles - 4);
  // The ring holds the LAST four residuals — its first entry must match
  // the level the solve actually reached, not the opening cycles.
  EXPECT_LT(rep.residual_history.front(), rep.initial_residual);
  EXPECT_NE(rep.summary().find("dropped"), std::string::npos);

  // The RunReport merge carries the drop count for render().
  obs::RunReport rr;
  attach_convergence(rep, rr);
  EXPECT_EQ(rr.residual_history_dropped, rep.history_dropped);
}

TEST_F(GuardedSolveTest, LadderDisabledFailsFast) {
  CycleConfig cfg = healthy2d();
  cfg.omega = 1.9;
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  GuardPolicy policy;
  policy.allow_reference_plan = false;
  policy.allow_smoother_downgrade = false;
  policy.allow_omega_reduction = false;
  const SolveReport rep = guarded_solve(cfg, p, 1e-6, policy);
  EXPECT_FALSE(rep.converged);
  EXPECT_EQ(rep.attempts.size(), 1u);
}

}  // namespace
}  // namespace polymg::solvers
