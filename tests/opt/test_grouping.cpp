#include <gtest/gtest.h>

#include "polymg/opt/grouping.hpp"
#include "polymg/solvers/cycles.hpp"

namespace polymg::opt {
namespace {

using solvers::CycleConfig;
using solvers::CycleKind;

CycleConfig small_cfg(int ndim, CycleKind kind, int n1, int n2, int n3) {
  CycleConfig cfg;
  cfg.ndim = ndim;
  cfg.n = ndim == 2 ? 63 : 15;
  cfg.levels = 3;
  cfg.kind = kind;
  cfg.n1 = n1;
  cfg.n2 = n2;
  cfg.n3 = n3;
  return cfg;
}

TEST(Grouping, NaiveKeepsSingletons) {
  const auto pipe = solvers::build_cycle(small_cfg(2, CycleKind::V, 4, 4, 4));
  CompileOptions opts = CompileOptions::for_variant(Variant::Naive, 2);
  const Grouping g = auto_group(pipe, opts);
  EXPECT_EQ(g.groups.size(), static_cast<std::size_t>(pipe.num_stages()));
}

TEST(Grouping, PartitionIsCompleteAndDisjoint) {
  const auto pipe = solvers::build_cycle(small_cfg(2, CycleKind::V, 4, 4, 4));
  CompileOptions opts = CompileOptions::for_variant(Variant::OptPlus, 2);
  const Grouping g = auto_group(pipe, opts);
  std::vector<int> seen(static_cast<std::size_t>(pipe.num_stages()), 0);
  for (std::size_t gi = 0; gi < g.groups.size(); ++gi) {
    for (int f : g.groups[gi]) {
      seen[static_cast<std::size_t>(f)]++;
      EXPECT_EQ(g.group_of[f], static_cast<int>(gi));
    }
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Grouping, FusionActuallyHappens) {
  const auto pipe = solvers::build_cycle(small_cfg(2, CycleKind::V, 4, 4, 4));
  CompileOptions opts = CompileOptions::for_variant(Variant::OptPlus, 2);
  const Grouping g = auto_group(pipe, opts);
  EXPECT_LT(g.groups.size(), static_cast<std::size_t>(pipe.num_stages()));
  std::size_t biggest = 0;
  for (const auto& grp : g.groups) biggest = std::max(biggest, grp.size());
  EXPECT_GE(biggest, 2u);
  EXPECT_LE(biggest, static_cast<std::size_t>(opts.group_limit));
}

TEST(Grouping, GroupLimitRespected) {
  const auto pipe = solvers::build_cycle(small_cfg(2, CycleKind::V, 10, 0, 0));
  CompileOptions opts = CompileOptions::for_variant(Variant::OptPlus, 2);
  opts.group_limit = 3;
  const Grouping g = auto_group(pipe, opts);
  for (const auto& grp : g.groups) {
    EXPECT_LE(grp.size(), 3u);
  }
}

TEST(Grouping, SmootherChainsFound) {
  const auto pipe = solvers::build_cycle(small_cfg(2, CycleKind::V, 4, 4, 4));
  const auto chains = find_smoother_chains(pipe);
  // Pre at levels 2,1 + coarse + post at levels 1,2: all chains of 4 (the
  // first step of a zero-guess chain is a seed stage, leaving 3).
  EXPECT_GE(chains.size(), 3u);
  for (const auto& c : chains) {
    EXPECT_GE(c.size(), 2u);
    for (std::size_t i = 1; i < c.size(); ++i) {
      EXPECT_EQ(pipe.funcs[c[i]].time_chain, pipe.funcs[c[0]].time_chain);
    }
  }
}

TEST(Grouping, DtilePinsChains) {
  const auto pipe = solvers::build_cycle(small_cfg(2, CycleKind::V, 4, 4, 4));
  CompileOptions opts = CompileOptions::for_variant(Variant::DtileOptPlus, 2);
  const Grouping g = auto_group(pipe, opts);
  bool any_tt = false;
  for (std::size_t gi = 0; gi < g.groups.size(); ++gi) {
    any_tt = any_tt || g.time_tiled[gi];
    if (g.time_tiled[gi]) {
      for (int f : g.groups[gi]) {
        EXPECT_EQ(pipe.funcs[f].construct, ir::ConstructKind::TStencilStep);
      }
    }
  }
  EXPECT_TRUE(any_tt);
}

}  // namespace
}  // namespace polymg::opt
