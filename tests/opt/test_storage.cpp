#include <gtest/gtest.h>

#include "polymg/opt/storage.hpp"

namespace polymg::opt {
namespace {

TEST(Storage, LastUseMap) {
  // times: producer schedule positions; consumers: their timestamps.
  const std::vector<int> times{0, 1, 2, 3};
  const std::vector<std::vector<int>> cons{{1, 3}, {2}, {3}, {}};
  const std::vector<int> last = last_use_map(times, cons);
  EXPECT_EQ(last, (std::vector<int>{3, 2, 3, 3}));
}

TEST(Storage, PaperFigure7TwoColours) {
  // Fig. 7: a chain interp -> correct -> 3 smooth steps, each node's
  // output consumed only by the next: two buffers suffice.
  std::vector<StorageItem> items;
  for (int i = 0; i < 5; ++i) {
    items.push_back(StorageItem{0, i, i + 1, false});
  }
  const RemapResult rr = remap_storage(items, false);
  EXPECT_EQ(rr.num_buffers, 2);
  // Alternating assignment.
  EXPECT_EQ(rr.storage[0], rr.storage[2]);
  EXPECT_EQ(rr.storage[1], rr.storage[3]);
  EXPECT_NE(rr.storage[0], rr.storage[1]);
}

TEST(Storage, LongLivedBufferNotReused) {
  // Item 0 is read until time 4; items 1..3 chain. Item 0's buffer must
  // not be handed to anyone before time 4.
  std::vector<StorageItem> items{
      {0, 0, 4, false}, {0, 1, 2, false}, {0, 2, 3, false}, {0, 3, 4, false}};
  const RemapResult rr = remap_storage(items, false);
  EXPECT_EQ(rr.storage[0], 0);
  for (int i = 1; i < 4; ++i) EXPECT_NE(rr.storage[i], 0);
  EXPECT_EQ(rr.num_buffers, 3);  // 0 + two alternating
}

TEST(Storage, ClassesSeparateBuffers) {
  // Alternating storage classes with each item dying exactly when the
  // next same-class item is being assigned: the release happens after
  // the assignment (Algorithm 3's order), so no reuse is possible and
  // every item needs a fresh buffer. With a single class the same
  // lifetimes would allow reuse — classes must keep them apart.
  std::vector<StorageItem> items;
  for (int i = 0; i < 4; ++i) {
    items.push_back(StorageItem{i % 2, i, i + 2, false});
  }
  EXPECT_EQ(remap_storage(items, false).num_buffers, 4);
  for (auto& it : items) it.klass = 0;
  EXPECT_LT(remap_storage(items, false).num_buffers, 4);
}

TEST(Storage, ExcludedItemsNeverReuse) {
  std::vector<StorageItem> items{
      {0, 0, 1, false}, {0, 1, 2, true}, {0, 2, 3, false}};
  const RemapResult rr = remap_storage(items, false);
  EXPECT_NE(rr.storage[1], rr.storage[0]);
  // Item 2 may reuse item 0's buffer (died at t=1), not the excluded one.
  EXPECT_EQ(rr.storage[2], rr.storage[0]);
}

TEST(Storage, DeferredReleaseBlocksSameTimestamp) {
  // Two live-outs of one group (same timestamp 1); the first's input dies
  // at time 1. Without deferral the second live-out could grab it; with
  // deferral it cannot.
  std::vector<StorageItem> items{
      {0, 0, 1, false},  // producer consumed by group 1
      {0, 1, 2, false},  // live-out A of group 1
      {0, 1, 2, false},  // live-out B of group 1
  };
  const RemapResult deferred = remap_storage(items, true);
  EXPECT_NE(deferred.storage[1], deferred.storage[0]);
  EXPECT_NE(deferred.storage[2], deferred.storage[0]);
  const RemapResult eager = remap_storage(items, false);
  // Eager mode would reuse — demonstrating what the deferral prevents.
  EXPECT_EQ(eager.storage[2], eager.storage[0]);
}

TEST(StorageClasses, SlackBucketsSizes) {
  StorageClasses sc(/*slack=*/8);
  const int a = sc.classify({50, 530, 0}, 2);
  const int b = sc.classify({52, 528, 0}, 2);  // within slack: same class
  const int c = sc.classify({100, 530, 0}, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Class size is the member max.
  EXPECT_EQ(sc.class_extents(a)[0], 52);
  EXPECT_EQ(sc.class_doubles(a), 52 * 530);
}

TEST(StorageClasses, DimensionalitySeparates) {
  StorageClasses sc(0);
  const int a2 = sc.classify({10, 10, 0}, 2);
  const int a3 = sc.classify({10, 10, 1}, 3);
  EXPECT_NE(a2, a3);
}

}  // namespace
}  // namespace polymg::opt
