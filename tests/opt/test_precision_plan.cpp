// Storage-precision assignment on compiled plans: which functions the
// policy turns float, which invariants validate_plan enforces, and how
// precision feeds the kernel fingerprint.
#include <gtest/gtest.h>

#include "polymg/opt/compile.hpp"
#include "polymg/opt/validate.hpp"
#include "polymg/solvers/cycles.hpp"

namespace polymg {
namespace {

solvers::CycleConfig small_cfg(int ndim) {
  solvers::CycleConfig cfg;
  cfg.ndim = ndim;
  cfg.n = ndim == 2 ? 63 : 15;
  cfg.levels = 3;
  return cfg;
}

int finest_level(const opt::CompiledPipeline& cp) {
  int finest = -1;
  for (const ir::FunctionDecl& f : cp.pipe.funcs) {
    finest = std::max(finest, f.level);
  }
  return finest;
}

TEST(PrecisionPlan, DoubleModeAssignsEverythingF64) {
  opt::CompileOptions opts;  // default precision: Double
  opt::CompiledPipeline cp =
      opt::compile(solvers::build_cycle(small_cfg(2)), opts);
  for (std::size_t i = 0; i < cp.pipe.funcs.size(); ++i) {
    EXPECT_EQ(cp.dtype_of_func(static_cast<int>(i)), grid::DType::F64);
  }
  for (std::size_t i = 0; i < cp.pipe.externals.size(); ++i) {
    EXPECT_EQ(cp.dtype_of_external(static_cast<int>(i)), grid::DType::F64);
  }
  EXPECT_NO_THROW(opt::validate_plan(cp));
}

TEST(PrecisionPlan, MixedTurnsFineGridsFloatKeepsCoarseAndOutputsDouble) {
  opt::CompileOptions opts;
  opts.precision.mode = opt::Precision::Mixed;
  opts.precision.crossover = 2;
  opt::CompiledPipeline cp =
      opt::compile(solvers::build_cycle(small_cfg(2)), opts);
  EXPECT_NO_THROW(opt::validate_plan(cp));

  const int finest = finest_level(cp);
  ASSERT_GE(finest, 0);
  int f32_funcs = 0;
  for (std::size_t i = 0; i < cp.pipe.funcs.size(); ++i) {
    const ir::FunctionDecl& f = cp.pipe.funcs[i];
    const grid::DType dt = cp.dtype_of_func(static_cast<int>(i));
    if (dt == grid::DType::F32) ++f32_funcs;
    // Coarse levels (at or below finest - crossover) and unleveled
    // functions never run float.
    if (f.level < 0 || f.level <= finest - opts.precision.crossover) {
      EXPECT_EQ(dt, grid::DType::F64) << "func " << i << " level " << f.level;
    }
  }
  EXPECT_GT(f32_funcs, 0) << "mixed plan assigned no float storage at all";
  for (int out : cp.pipe.outputs) {
    EXPECT_EQ(cp.dtype_of_func(out), grid::DType::F64);
  }
}

TEST(PrecisionPlan, FloatModeStillKeepsOutputsDouble) {
  opt::CompileOptions opts;
  opts.precision.mode = opt::Precision::Float;
  opt::CompiledPipeline cp =
      opt::compile(solvers::build_cycle(small_cfg(2)), opts);
  EXPECT_NO_THROW(opt::validate_plan(cp));
  for (int out : cp.pipe.outputs) {
    EXPECT_EQ(cp.dtype_of_func(out), grid::DType::F64);
  }
}

TEST(PrecisionPlan, EveryFunctionReadsUniformSourceDtype) {
  opt::CompileOptions opts;
  opts.precision.mode = opt::Precision::Mixed;
  opt::CompiledPipeline cp =
      opt::compile(solvers::build_cycle(small_cfg(3)), opts);
  EXPECT_NO_THROW(opt::validate_plan(cp));
  for (const ir::FunctionDecl& f : cp.pipe.funcs) {
    grid::DType seen = grid::DType::F64;
    bool first = true;
    for (const ir::SourceSlot& s : f.sources) {
      const grid::DType dt = s.external ? cp.dtype_of_external(s.index)
                                        : cp.dtype_of_func(s.index);
      if (first) {
        seen = dt;
        first = false;
      } else {
        EXPECT_EQ(dt, seen) << "mixed-dtype sources in " << f.name;
      }
    }
  }
}

TEST(PrecisionPlan, FingerprintSeparatesPrecisionModes) {
  const ir::Pipeline pipe = solvers::build_cycle(small_cfg(2));
  opt::CompileOptions dbl;
  opt::CompileOptions mix;
  mix.precision.mode = opt::Precision::Mixed;
  const std::uint64_t fp_d = opt::kernel_fingerprint(
      opt::compile(ir::Pipeline(pipe), dbl));
  const std::uint64_t fp_m = opt::kernel_fingerprint(
      opt::compile(ir::Pipeline(pipe), mix));
  // Dtypes are baked into JIT kernels, so plans differing only in
  // precision must never share a kernel module.
  EXPECT_NE(fp_d, fp_m);
}

TEST(PrecisionPlan, TimeTiledChainsStayDtypeUniform) {
  // Under DtileOptPlus a smoother chain shares one ping-pong buffer
  // pair, so the whole chain must carry one dtype — the repair fixpoint
  // may demote everything back to double, but the plan must validate.
  opt::CompileOptions opts =
      opt::CompileOptions::for_variant(opt::Variant::DtileOptPlus, 2);
  opts.precision.mode = opt::Precision::Mixed;
  opt::CompiledPipeline cp =
      opt::compile(solvers::build_cycle(small_cfg(2)), opts);
  EXPECT_NO_THROW(opt::validate_plan(cp));
}

TEST(PrecisionPlan, ReferenceOptionsForceFullDouble) {
  opt::CompileOptions opts;
  opts.precision.mode = opt::Precision::Mixed;
  const opt::CompileOptions ref = opt::reference_options(opts);
  EXPECT_FALSE(ref.precision.mixed());
}

}  // namespace
}  // namespace polymg
