// Randomized check of remapStorage (Algorithm 3): for random schedules,
// lifetimes and storage classes, the assignment must never let two items
// with overlapping live ranges share a buffer, must never mix classes in
// one buffer, and must isolate excluded (program IO) items — while still
// reusing at least as well as the trivial one-buffer-per-item mapping.
#include <gtest/gtest.h>

#include "polymg/common/rng.hpp"
#include "polymg/opt/storage.hpp"

namespace polymg::opt {
namespace {

struct Model {
  std::vector<StorageItem> items;
};

Model random_model(Rng& rng, int n, int nclasses, bool defer) {
  // Non-deferred mode contracts on unique timestamps (see storage.hpp):
  // use a random permutation of schedule positions there; deferred mode
  // (group timestamps) may repeat them.
  std::vector<int> times(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    times[static_cast<std::size_t>(i)] =
        defer ? static_cast<int>(rng.below(static_cast<std::uint64_t>(n)))
              : i;
  }
  if (!defer) {
    for (int i = n - 1; i > 0; --i) {
      std::swap(times[static_cast<std::size_t>(i)],
                times[rng.below(static_cast<std::uint64_t>(i + 1))]);
    }
  }
  Model m;
  for (int i = 0; i < n; ++i) {
    StorageItem it;
    it.klass = static_cast<int>(rng.below(static_cast<std::uint64_t>(nclasses)));
    it.time = times[static_cast<std::size_t>(i)];
    it.last_use =
        it.time + static_cast<int>(rng.below(static_cast<std::uint64_t>(n / 2 + 1)));
    it.excluded = rng.next_double() < 0.1;
    m.items.push_back(it);
  }
  return m;
}

/// The safety property: if item a's buffer is reused by item b (b
/// scheduled later), a's last use must precede b's definition — strictly
/// when deferral is on, at-or-before otherwise (Algorithm 3 releases
/// after the same-timestamp assignment, so equality is already safe for
/// the intra-group granularity it is used at).
void check_assignment(const Model& m, const RemapResult& rr, bool defer) {
  const std::size_t n = m.items.size();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b || rr.storage[a] != rr.storage[b]) continue;
      // Same buffer: classes must match and neither may be excluded.
      EXPECT_FALSE(m.items[a].excluded || m.items[b].excluded)
          << "excluded item shares buffer";
      EXPECT_EQ(m.items[a].klass, m.items[b].klass);
      // Live ranges [time, last_use] must not overlap improperly.
      const StorageItem& first =
          m.items[a].time <= m.items[b].time ? m.items[a] : m.items[b];
      const StorageItem& second =
          m.items[a].time <= m.items[b].time ? m.items[b] : m.items[a];
      if (defer) {
        EXPECT_LT(first.last_use, second.time)
            << "deferred mode allowed same-time reuse";
      } else {
        EXPECT_LE(first.last_use, second.time);
      }
    }
  }
}

TEST(StorageFuzz, RandomLifetimesNeverAlias) {
  Rng rng(20260705);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 2 + static_cast<int>(rng.below(40));
    const int nclasses = 1 + static_cast<int>(rng.below(4));
    const bool defer = rng.next_double() < 0.5;
    const Model m = random_model(rng, n, nclasses, defer);
    const RemapResult rr = remap_storage(m.items, defer);
    ASSERT_EQ(rr.storage.size(), m.items.size());
    for (int s : rr.storage) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, rr.num_buffers);
    }
    EXPECT_LE(rr.num_buffers, n);
    check_assignment(m, rr, defer);
  }
}

TEST(StorageFuzz, ChainsAlwaysReachTwoBuffers) {
  // Long same-class chains (the Fig. 7 shape) must settle at exactly two
  // buffers regardless of length.
  for (int len : {3, 10, 50, 200}) {
    std::vector<StorageItem> items;
    for (int i = 0; i < len; ++i) {
      items.push_back(StorageItem{0, i, i + 1, false});
    }
    EXPECT_EQ(remap_storage(items, false).num_buffers, 2) << len;
  }
}

TEST(StorageFuzz, DeterministicAcrossCalls) {
  Rng rng(7);
  const Model m = random_model(rng, 30, 3, false);
  const RemapResult a = remap_storage(m.items, false);
  const RemapResult b = remap_storage(m.items, false);
  EXPECT_EQ(a.storage, b.storage);
  EXPECT_EQ(a.num_buffers, b.num_buffers);
}

}  // namespace
}  // namespace polymg::opt
