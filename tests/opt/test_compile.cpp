#include <gtest/gtest.h>

#include "polymg/opt/compile.hpp"
#include "polymg/solvers/cycles.hpp"

namespace polymg::opt {
namespace {

using solvers::CycleConfig;
using solvers::CycleKind;

CycleConfig cfg2d() {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 3;
  return cfg;
}

TEST(Compile, NaiveGivesOneArrayPerStage) {
  const auto cp = compile(solvers::build_cycle(cfg2d()),
                          CompileOptions::for_variant(Variant::Naive, 2));
  EXPECT_EQ(static_cast<int>(cp.arrays.size()), cp.pipe.num_stages());
  for (int f = 0; f < cp.pipe.num_stages(); ++f) {
    EXPECT_GE(cp.array_of_func[f], 0);
  }
  for (const GroupPlan& g : cp.groups) {
    EXPECT_EQ(g.exec, GroupExec::Loops);
    EXPECT_EQ(g.stages.size(), 1u);
  }
}

TEST(Compile, IntraReuseShrinksScratchpads) {
  CompileOptions with = CompileOptions::for_variant(Variant::OptPlus, 2);
  CompileOptions without = with;
  without.intra_group_reuse = false;
  const auto a = compile(solvers::build_cycle(cfg2d()), with);
  const auto b = compile(solvers::build_cycle(cfg2d()), without);
  EXPECT_LT(a.scratch_buffers_with_reuse, a.scratch_buffers_without_reuse);
  EXPECT_EQ(b.scratch_buffers_with_reuse, b.scratch_buffers_without_reuse);
}

TEST(Compile, InterReuseShrinksArrayFootprint) {
  // W-cycles revisit levels, creating same-size arrays with disjoint
  // lifetimes — the inter-group pass must share them. (A shallow V-cycle
  // has no such disjoint pairs; the dynamic pool still helps there,
  // which is exactly the paper's Fig. 11b observation.)
  CycleConfig cfg = cfg2d();
  cfg.kind = CycleKind::W;
  cfg.levels = 4;
  CompileOptions with = CompileOptions::for_variant(Variant::OptPlus, 2);
  CompileOptions without = with;
  without.inter_group_reuse = false;
  const auto a = compile(solvers::build_cycle(cfg), with);
  const auto b = compile(solvers::build_cycle(cfg), without);
  EXPECT_LT(a.array_doubles_with_reuse, a.array_doubles_without_reuse);
  EXPECT_EQ(b.array_doubles_with_reuse, b.array_doubles_without_reuse);
  EXPECT_LT(a.arrays.size(), b.arrays.size());
}

TEST(Compile, OutputsNeverReused) {
  const auto cp = compile(solvers::build_cycle(cfg2d()),
                          CompileOptions::for_variant(Variant::OptPlus, 2));
  for (int out : cp.pipe.outputs) {
    const int aid = cp.array_of_func[out];
    ASSERT_GE(aid, 0);
    EXPECT_TRUE(cp.arrays[aid].io);
    // No other function maps onto an output's array.
    for (int f = 0; f < cp.pipe.num_stages(); ++f) {
      if (f != out && cp.array_of_func[f] == aid) {
        FAIL() << "function " << cp.pipe.funcs[f].name
               << " shares the output array";
      }
    }
    // Output arrays are never pool-released.
    for (const auto& rel : cp.release_after_group) {
      for (int a : rel) EXPECT_NE(a, aid);
    }
  }
}

TEST(Compile, ReleasePointsAfterLastUse) {
  const auto cp = compile(solvers::build_cycle(cfg2d()),
                          CompileOptions::for_variant(Variant::OptPlus, 2));
  // Build func -> group map.
  std::vector<int> group_of(static_cast<std::size_t>(cp.pipe.num_stages()));
  for (std::size_t gi = 0; gi < cp.groups.size(); ++gi) {
    for (const StagePlan& sp : cp.groups[gi].stages) {
      group_of[static_cast<std::size_t>(sp.func)] = static_cast<int>(gi);
    }
  }
  // An array must not be released before a group that reads it.
  std::vector<int> released_at(cp.arrays.size(), 1 << 30);
  for (std::size_t gi = 0; gi < cp.release_after_group.size(); ++gi) {
    for (int a : cp.release_after_group[gi]) {
      released_at[static_cast<std::size_t>(a)] = static_cast<int>(gi);
    }
  }
  for (int f = 0; f < cp.pipe.num_stages(); ++f) {
    for (const ir::SourceSlot& s : cp.pipe.funcs[f].sources) {
      if (s.external) continue;
      const int aid = cp.array_of_func[s.index];
      if (aid < 0) continue;
      EXPECT_GE(released_at[static_cast<std::size_t>(aid)],
                group_of[static_cast<std::size_t>(f)])
          << "array of " << cp.pipe.funcs[s.index].name
          << " released before consumer " << cp.pipe.funcs[f].name;
    }
  }
}

TEST(Compile, DtileCreatesTimeTiledGroups) {
  CycleConfig cfg = cfg2d();
  const auto cp = compile(solvers::build_cycle(cfg),
                          CompileOptions::for_variant(Variant::DtileOptPlus, 2));
  int tt = 0;
  for (const GroupPlan& g : cp.groups) {
    if (g.exec == GroupExec::TimeTiled) {
      ++tt;
      EXPECT_GE(g.stages.size(), 2u);
      EXPECT_GE(g.time_temp_array, 0);
      EXPECT_GE(g.dtile_W, 2 * g.dtile_H);
    }
  }
  EXPECT_GT(tt, 0);
}

TEST(Compile, CollapseDepthFollowsOption) {
  CompileOptions opts = CompileOptions::for_variant(Variant::OptPlus, 2);
  opts.collapse = false;
  const auto cp = compile(solvers::build_cycle(cfg2d()), opts);
  for (const GroupPlan& g : cp.groups) {
    if (g.exec == GroupExec::OverlapTiled) EXPECT_EQ(g.collapse_depth, 1);
  }
}

}  // namespace
}  // namespace polymg::opt
