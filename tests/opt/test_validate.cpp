// validate_plan must accept every plan compile() produces and reject
// hand-corrupted ones — one corruption per invariant family.
#include "polymg/opt/validate.hpp"

#include <gtest/gtest.h>

#include "polymg/common/error.hpp"
#include "polymg/ir/regprog.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/solvers/cycles.hpp"
#include "polymg/solvers/varcoef.hpp"

namespace polymg::opt {
namespace {

using solvers::CycleConfig;
using solvers::CycleKind;
using solvers::SmootherKind;

CompiledPipeline compile_cycle(const CycleConfig& cfg, Variant v) {
  return compile(solvers::build_cycle(cfg),
                 CompileOptions::for_variant(v, cfg.ndim));
}

CycleConfig small2d() {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 3;
  return cfg;
}

TEST(ValidatePlan, AcceptsAllVariants2d) {
  for (Variant v : {Variant::Naive, Variant::Opt, Variant::OptPlus,
                    Variant::DtileOptPlus}) {
    CompiledPipeline cp = compile_cycle(small2d(), v);
    const auto issues = plan_issues(cp);
    EXPECT_TRUE(issues.empty())
        << "variant " << static_cast<int>(v) << ": " << issues.front();
    EXPECT_NO_THROW(validate_plan(cp));
  }
}

TEST(ValidatePlan, AcceptsAllVariants3d) {
  CycleConfig cfg;
  cfg.ndim = 3;
  cfg.n = 31;
  cfg.levels = 3;
  for (Variant v : {Variant::Naive, Variant::OptPlus}) {
    CompiledPipeline cp = compile_cycle(cfg, v);
    const auto issues = plan_issues(cp);
    EXPECT_TRUE(issues.empty())
        << "variant " << static_cast<int>(v) << ": " << issues.front();
  }
}

TEST(ValidatePlan, AcceptsCycleKindsAndSmoothers) {
  for (CycleKind k : {CycleKind::V, CycleKind::W, CycleKind::F}) {
    CycleConfig cfg = small2d();
    cfg.kind = k;
    EXPECT_NO_THROW(validate_plan(compile_cycle(cfg, Variant::OptPlus)));
  }
  for (SmootherKind s :
       {SmootherKind::Jacobi, SmootherKind::GSRB, SmootherKind::Chebyshev}) {
    CycleConfig cfg = small2d();
    cfg.smoother = s;
    EXPECT_NO_THROW(validate_plan(compile_cycle(cfg, Variant::OptPlus)));
  }
}

TEST(ValidatePlan, AcceptsReferenceOptions) {
  const CycleConfig cfg = small2d();
  const CompileOptions ref =
      reference_options(CompileOptions::for_variant(Variant::OptPlus, 2));
  EXPECT_EQ(ref.variant, Variant::Naive);
  EXPECT_FALSE(ref.pooled_allocation);
  EXPECT_NO_THROW(validate_plan(compile(solvers::build_cycle(cfg), ref)));
}

TEST(ValidatePlan, RejectsUndersizedArray) {
  CompiledPipeline cp = compile_cycle(small2d(), Variant::OptPlus);
  ASSERT_FALSE(cp.arrays.empty());
  cp.arrays[0].doubles = 1;
  EXPECT_FALSE(plan_issues(cp).empty());
  try {
    validate_plan(cp);
    FAIL() << "expected Error(InvalidPlan)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::InvalidPlan);
  }
}

TEST(ValidatePlan, RejectsDanglingArrayId) {
  CompiledPipeline cp = compile_cycle(small2d(), Variant::OptPlus);
  cp.array_of_func[0] = static_cast<int>(cp.arrays.size()) + 7;
  EXPECT_FALSE(plan_issues(cp).empty());
}

TEST(ValidatePlan, RejectsDuplicatedFuncInGroups) {
  CompiledPipeline cp = compile_cycle(small2d(), Variant::OptPlus);
  ASSERT_GE(cp.groups.size(), 2u);
  // Schedule the first stage of group 0 a second time in the last group.
  cp.groups.back().stages.push_back(cp.groups.front().stages.front());
  EXPECT_FALSE(plan_issues(cp).empty());
}

TEST(ValidatePlan, RejectsUndersizedScratchpad) {
  CompiledPipeline cp = compile_cycle(small2d(), Variant::OptPlus);
  bool corrupted = false;
  for (auto& g : cp.groups) {
    if (g.exec == GroupExec::OverlapTiled && !g.scratch_sizes.empty()) {
      g.scratch_sizes[0] = 1;  // far below any tile footprint
      g.scratch_doubles_total = 0;
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted) << "OptPlus plan should contain a tiled group";
  EXPECT_FALSE(plan_issues(cp).empty());
}

TEST(ValidatePlan, RejectsPrematureRelease) {
  CompiledPipeline cp = compile_cycle(small2d(), Variant::OptPlus);
  ASSERT_GE(cp.groups.size(), 2u);
  // Find an array first written in some group g and release it right
  // there; any later reader makes that premature.
  for (std::size_t g = 0; g + 1 < cp.groups.size(); ++g) {
    for (const auto& st : cp.groups[g].stages) {
      if (st.array < 0 || cp.arrays[st.array].io) continue;
      cp.release_after_group[g].push_back(st.array);
      const auto issues = plan_issues(cp);
      if (!issues.empty()) {
        SUCCEED();
        return;
      }
      cp.release_after_group[g].pop_back();
    }
  }
  GTEST_SKIP() << "no array with a later reader found to corrupt";
}

TEST(ValidatePlan, RejectsReleaseOfOutputArray) {
  CompiledPipeline cp = compile_cycle(small2d(), Variant::OptPlus);
  int io_array = -1;
  for (std::size_t a = 0; a < cp.arrays.size(); ++a) {
    if (cp.arrays[a].io) io_array = static_cast<int>(a);
  }
  ASSERT_GE(io_array, 0);
  cp.release_after_group.back().push_back(io_array);
  EXPECT_FALSE(plan_issues(cp).empty());
}

TEST(ValidatePlan, RejectsBrokenTimeTileShape) {
  CycleConfig cfg = small2d();
  CompiledPipeline cp = compile_cycle(cfg, Variant::DtileOptPlus);
  bool corrupted = false;
  for (auto& g : cp.groups) {
    if (g.exec == GroupExec::TimeTiled) {
      g.dtile_W = g.dtile_H;  // violates W >= 2H (tiles would overlap)
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted) << "DtileOptPlus plan should time-tile a chain";
  EXPECT_FALSE(plan_issues(cp).empty());
}

TEST(ValidatePlan, AcceptsPlanTimeTileRegionCache) {
  // compile() precomputes every tile's per-stage region; the checker
  // re-derives them and must agree (cache present AND valid).
  CompiledPipeline cp = compile_cycle(small2d(), Variant::OptPlus);
  bool has_cache = false;
  for (const auto& g : cp.groups) {
    if (g.exec == GroupExec::OverlapTiled) {
      EXPECT_FALSE(g.tile_regions_cache.empty());
      has_cache = has_cache || !g.tile_regions_cache.empty();
    }
  }
  ASSERT_TRUE(has_cache) << "OptPlus plan should cache tile regions";
  EXPECT_TRUE(plan_issues(cp).empty());
}

TEST(ValidatePlan, RejectsCorruptedTileRegionCache) {
  CompiledPipeline cp = compile_cycle(small2d(), Variant::OptPlus);
  bool corrupted = false;
  for (auto& g : cp.groups) {
    if (g.exec == GroupExec::OverlapTiled && !g.tile_regions_cache.empty()) {
      // Shift one cached stage region: it no longer matches the
      // re-derived footprint, so the instance table is stale.
      poly::Box& b = g.tile_regions_cache.front();
      b.dim(0) = poly::Interval{b.dim(0).lo + 1, b.dim(0).hi + 1};
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_FALSE(plan_issues(cp).empty());
}

TEST(ValidatePlan, RejectsWrongSizedTileRegionCache) {
  CompiledPipeline cp = compile_cycle(small2d(), Variant::OptPlus);
  bool corrupted = false;
  for (auto& g : cp.groups) {
    if (g.exec == GroupExec::OverlapTiled && !g.tile_regions_cache.empty()) {
      g.tile_regions_cache.pop_back();  // truncated instance table
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_FALSE(plan_issues(cp).empty());
}

TEST(ValidatePlan, ReferencePlanCarriesNoRegisterPrograms) {
  // The reference oracle must stay an independent implementation: its
  // lowered functions interpret stack bytecode, never the register
  // programs the engine under test executes.
  const CompileOptions ref =
      reference_options(CompileOptions::for_variant(Variant::OptPlus, 2));
  EXPECT_FALSE(ref.register_engine);
  CompiledPipeline cp = compile(solvers::build_cycle(small2d()), ref);
  for (const auto& lf : cp.lowered) {
    for (const auto& d : lf.defs) EXPECT_TRUE(d.regprog.empty());
  }
  EXPECT_TRUE(plan_issues(cp).empty());

  // Smuggling a register program into a reference plan is a validation
  // failure, not a silent fast path.
  ASSERT_FALSE(cp.lowered.empty());
  ASSERT_FALSE(cp.lowered[0].defs.empty());
  cp.lowered[0].defs[0].regprog =
      ir::compile_regprog(cp.lowered[0].defs[0].bytecode);
  EXPECT_FALSE(plan_issues(cp).empty());
}

TEST(ValidatePlan, RejectsMalformedRegisterProgram) {
  // The variable-coefficient smoother is a load·load product, so its
  // OptPlus plan carries register programs to corrupt.
  CycleConfig cfg = small2d();
  CompiledPipeline cp = compile(solvers::build_varcoef_cycle(cfg),
                                CompileOptions::for_variant(Variant::OptPlus,
                                                            cfg.ndim));
  EXPECT_TRUE(plan_issues(cp).empty());
  bool corrupted = false;
  for (auto& lf : cp.lowered) {
    for (auto& d : lf.defs) {
      if (!d.regprog.empty()) {
        d.regprog.result = d.regprog.num_regs + 5;  // dangling result
        corrupted = true;
        break;
      }
    }
    if (corrupted) break;
  }
  ASSERT_TRUE(corrupted) << "varcoef plan should carry register programs";
  EXPECT_FALSE(plan_issues(cp).empty());
}

TEST(ValidatePlan, AcceptsPlanTimeScheduleGraph) {
  for (Variant v : {Variant::Opt, Variant::OptPlus, Variant::DtileOptPlus}) {
    CompiledPipeline cp = compile_cycle(small2d(), v);
    ASSERT_FALSE(cp.sched.empty()) << "variant " << static_cast<int>(v);
    EXPECT_TRUE(plan_issues(cp).empty());
  }
}

TEST(ValidatePlan, RejectsDroppedScheduleEdge) {
  CompiledPipeline cp = compile_cycle(small2d(), Variant::OptPlus);
  SchedGraph& sg = cp.sched;
  // Drop the first explicit edge, keeping the CSR shape and the target's
  // predecessor count self-consistent — only recomputation against the
  // plan's region machinery can notice the dependence is missing.
  std::size_t t = 0;
  while (t + 1 < sg.succ_off.size() && sg.succ_off[t + 1] == sg.succ_off[t]) {
    ++t;
  }
  ASSERT_LT(t + 1, sg.succ_off.size()) << "plan has no schedule edges";
  const index_t target = sg.succ[static_cast<std::size_t>(sg.succ_off[t])];
  sg.succ.erase(sg.succ.begin() + sg.succ_off[t]);
  for (std::size_t i = t + 1; i < sg.succ_off.size(); ++i) --sg.succ_off[i];
  --sg.pred_count[static_cast<std::size_t>(target)];
  const auto issues = plan_issues(cp);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.front().find("sched:"), std::string::npos)
      << issues.front();
  EXPECT_THROW(validate_plan(cp), Error);
}

TEST(ValidatePlan, RejectsCorruptedSchedulePredCount) {
  CompiledPipeline cp = compile_cycle(small2d(), Variant::OptPlus);
  ASSERT_FALSE(cp.sched.empty());
  // A pred_count that disagrees with the edge list would deadlock (too
  // high) or race (too low) the persistent team.
  cp.sched.pred_count.back() += 1;
  EXPECT_FALSE(plan_issues(cp).empty());
}

TEST(ValidatePlan, RejectsCorruptedScheduleNode) {
  CompiledPipeline cp = compile_cycle(small2d(), Variant::OptPlus);
  ASSERT_FALSE(cp.sched.empty());
  // Fuse the first node's tasks into one without re-deriving the graph:
  // the node skeleton no longer matches the plan.
  CompiledPipeline broken_tasks = compile_cycle(small2d(), Variant::OptPlus);
  broken_tasks.sched.nodes.front().serial =
      !broken_tasks.sched.nodes.front().serial;
  EXPECT_FALSE(plan_issues(broken_tasks).empty());

  CompiledPipeline broken_group = compile_cycle(small2d(), Variant::OptPlus);
  broken_group.sched.nodes.back().group = 0;
  EXPECT_FALSE(plan_issues(broken_group).empty());
}

TEST(ValidatePlan, ErrorListsEveryIssue) {
  CompiledPipeline cp = compile_cycle(small2d(), Variant::OptPlus);
  cp.arrays[0].doubles = 1;
  cp.array_of_func[0] = -2;
  const auto issues = plan_issues(cp);
  EXPECT_GE(issues.size(), 2u);
  try {
    validate_plan(cp);
    FAIL() << "expected Error(InvalidPlan)";
  } catch (const Error& e) {
    const std::string what = e.what();
    for (const auto& issue : issues) {
      EXPECT_NE(what.find(issue), std::string::npos)
          << "missing issue: " << issue;
    }
  }
}

}  // namespace
}  // namespace polymg::opt
