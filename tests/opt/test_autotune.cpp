#include <gtest/gtest.h>

#include "polymg/opt/autotune.hpp"

namespace polymg::opt {
namespace {

TEST(Autotune, PaperSpaceSizes) {
  // §3.2.4: "2D benchmarks are tuned for 80 configurations and 3D
  // benchmarks are tuned for 135 configurations."
  EXPECT_EQ(TuneSpace::paper_default(2).size(2), 80u);
  EXPECT_EQ(TuneSpace::paper_default(3).size(3), 135u);
}

TEST(Autotune, VisitsEveryConfigurationOnce) {
  const TuneSpace space = TuneSpace::paper_default(2);
  const CompileOptions base = CompileOptions::for_variant(Variant::OptPlus, 2);
  int calls = 0;
  const TuneResult r = autotune(space, 2, base, [&](const CompileOptions&) {
    return static_cast<double>(++calls);
  });
  EXPECT_EQ(calls, 80);
  EXPECT_EQ(r.points.size(), 80u);
  // Configurations are pairwise distinct.
  for (std::size_t a = 0; a < r.points.size(); ++a) {
    for (std::size_t b = a + 1; b < r.points.size(); ++b) {
      EXPECT_FALSE(r.points[a].tile == r.points[b].tile &&
                   r.points[a].group_limit == r.points[b].group_limit);
    }
  }
}

TEST(Autotune, PicksTheMinimum) {
  TuneSpace space;
  space.tiles[0] = {8, 16};
  space.tiles[1] = {64, 128};
  space.group_limits = {4, 8};
  const CompileOptions base = CompileOptions::for_variant(Variant::OptPlus, 2);
  // Synthetic cost: prefer tile {16, 128} with limit 8.
  const TuneResult r = autotune(space, 2, base, [](const CompileOptions& o) {
    double cost = 10.0;
    if (o.tile[0] == 16) cost -= 1;
    if (o.tile[1] == 128) cost -= 2;
    if (o.group_limit == 8) cost -= 3;
    return cost;
  });
  EXPECT_EQ(r.best.tile[0], 16);
  EXPECT_EQ(r.best.tile[1], 128);
  EXPECT_EQ(r.best.group_limit, 8);
  EXPECT_DOUBLE_EQ(r.best.seconds, 4.0);
}

TEST(Autotune, PropagatesBaseOptions) {
  TuneSpace space;
  space.tiles[0] = {8};
  space.tiles[1] = {64};
  space.group_limits = {4};
  CompileOptions base = CompileOptions::for_variant(Variant::Opt, 2);
  base.overlap_threshold = 0.25;
  autotune(space, 2, base, [&](const CompileOptions& o) {
    EXPECT_EQ(o.variant, Variant::Opt);
    EXPECT_DOUBLE_EQ(o.overlap_threshold, 0.25);
    EXPECT_EQ(o.tile[0], 8);
    EXPECT_EQ(o.group_limit, 4);
    return 1.0;
  });
}

}  // namespace
}  // namespace polymg::opt
