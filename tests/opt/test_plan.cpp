#include <gtest/gtest.h>

#include "polymg/opt/compile.hpp"
#include "polymg/solvers/cycles.hpp"

namespace polymg::opt {
namespace {

using solvers::CycleConfig;
using solvers::CycleKind;

CompiledPipeline compile_small(Variant v, int ndim = 2) {
  CycleConfig cfg;
  cfg.ndim = ndim;
  cfg.n = ndim == 2 ? 63 : 15;
  cfg.levels = 3;
  CompileOptions opts = CompileOptions::for_variant(v, ndim);
  opts.tile = ndim == 2 ? poly::TileSizes{16, 32, 0}
                        : poly::TileSizes{8, 8, 16};
  return compile(solvers::build_cycle(cfg), opts);
}

TEST(Plan, TileRegionsCoverConsumerFootprints) {
  const CompiledPipeline cp = compile_small(Variant::OptPlus);
  for (const GroupPlan& g : cp.groups) {
    if (g.exec != GroupExec::OverlapTiled) continue;
    std::vector<poly::Box> regions;
    for (poly::index_t t = 0; t < g.tiles.total; ++t) {
      tile_regions(cp.pipe, g, g.tiles.tile_box(t), regions);
      for (std::size_t p = 0; p < g.stages.size(); ++p) {
        const StagePlan& sp = g.stages[p];
        const ir::FunctionDecl& cf = cp.pipe.funcs[sp.func];
        // Every in-group producer region must cover what this stage reads.
        for (const auto& [cpos, slot] : sp.in_group_consumers) {
          (void)cpos;
        }
        for (std::size_t s = 0; s < cf.sources.size(); ++s) {
          if (cf.sources[s].external) continue;
          for (std::size_t q = 0; q < g.stages.size(); ++q) {
            if (g.stages[q].func != cf.sources[s].index) continue;
            const poly::Box need = poly::intersect(
                poly::footprint(cf.access_for(static_cast<int>(s)),
                                regions[p]),
                cp.pipe.funcs[g.stages[q].func].domain);
            EXPECT_TRUE(regions[q].contains(need))
                << cf.name << " reads " << need << " of "
                << cp.pipe.funcs[g.stages[q].func].name << " but region is "
                << regions[q];
          }
        }
      }
    }
  }
}

TEST(Plan, OwnedRegionsPartitionLiveoutDomains) {
  const CompiledPipeline cp = compile_small(Variant::OptPlus);
  for (const GroupPlan& g : cp.groups) {
    if (g.exec != GroupExec::OverlapTiled) continue;
    const ir::FunctionDecl& anchor = cp.pipe.funcs[g.stages[g.anchor].func];
    for (const StagePlan& sp : g.stages) {
      if (sp.array < 0) continue;
      const ir::FunctionDecl& f = cp.pipe.funcs[sp.func];
      poly::index_t covered = 0;
      std::vector<poly::Box> owned;
      for (poly::index_t t = 0; t < g.tiles.total; ++t) {
        const poly::Box own = owned_region(f, sp.rel, g.tiles.tile_box(t),
                                           anchor.domain);
        covered += own.count();
        for (const poly::Box& prev : owned) {
          EXPECT_TRUE(poly::intersect(own, prev).empty())
              << f.name << ": overlapping owned regions";
        }
        owned.push_back(own);
      }
      EXPECT_EQ(covered, f.domain.count())
          << f.name << ": owned regions must tile the domain";
    }
  }
}

TEST(Plan, ScratchExtentBoundsHold) {
  const CompiledPipeline cp = compile_small(Variant::OptPlus);
  for (const GroupPlan& g : cp.groups) {
    if (g.exec != GroupExec::OverlapTiled) continue;
    std::vector<poly::Box> regions;
    for (poly::index_t t = 0; t < g.tiles.total; ++t) {
      tile_regions(cp.pipe, g, g.tiles.tile_box(t), regions);
      for (std::size_t p = 0; p < g.stages.size(); ++p) {
        const StagePlan& sp = g.stages[p];
        if (sp.scratch_buffer < 0) continue;
        EXPECT_LE(regions[p].count(), g.scratch_sizes[sp.scratch_buffer])
            << cp.pipe.funcs[sp.func].name;
        for (int d = 0; d < cp.pipe.ndim; ++d) {
          EXPECT_LE(regions[p].dim(d).size(), sp.scratch_extent[d]);
        }
      }
    }
  }
}

TEST(Plan, GroupsTopologicallyOrdered) {
  for (Variant v : {Variant::Naive, Variant::Opt, Variant::OptPlus,
                    Variant::DtileOptPlus}) {
    const CompiledPipeline cp = compile_small(v);
    std::vector<int> group_of(static_cast<std::size_t>(cp.pipe.num_stages()),
                              -1);
    for (std::size_t gi = 0; gi < cp.groups.size(); ++gi) {
      for (const StagePlan& sp : cp.groups[gi].stages) {
        group_of[static_cast<std::size_t>(sp.func)] = static_cast<int>(gi);
      }
    }
    for (int f = 0; f < cp.pipe.num_stages(); ++f) {
      for (const ir::SourceSlot& s : cp.pipe.funcs[f].sources) {
        if (s.external) continue;
        EXPECT_LE(group_of[static_cast<std::size_t>(s.index)],
                  group_of[static_cast<std::size_t>(f)]);
      }
    }
  }
}

TEST(Plan, DumpMentionsEveryStage) {
  const CompiledPipeline cp = compile_small(Variant::OptPlus);
  const std::string d = cp.dump();
  for (const ir::FunctionDecl& f : cp.pipe.funcs) {
    EXPECT_NE(d.find(f.name), std::string::npos) << f.name;
  }
}

}  // namespace
}  // namespace polymg::opt
