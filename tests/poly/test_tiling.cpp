#include <gtest/gtest.h>

#include "polymg/poly/tiling.hpp"

namespace polymg::poly {
namespace {

TEST(Tiling, PartitionCoversDisjointly) {
  const Box dom{{0, 65}, {0, 129}};
  const TileGrid g = make_tile_grid(dom, {32, 64, 0});
  EXPECT_EQ(g.ntiles[0], 3);
  EXPECT_EQ(g.ntiles[1], 3);
  EXPECT_EQ(g.total, 9);
  index_t covered = 0;
  for (index_t t = 0; t < g.total; ++t) {
    const Box b = g.tile_box(t);
    EXPECT_TRUE(dom.contains(b));
    covered += b.count();
    for (index_t u = 0; u < t; ++u) {
      EXPECT_TRUE(intersect(b, g.tile_box(u)).empty());
    }
  }
  EXPECT_EQ(covered, dom.count());
}

TEST(Tiling, ZeroSizeMeansWholeDimension) {
  const Box dom{{0, 99}, {0, 99}};
  const TileGrid g = make_tile_grid(dom, {25, 0, 0});
  EXPECT_EQ(g.ntiles[0], 4);
  EXPECT_EQ(g.ntiles[1], 1);
  EXPECT_EQ(g.tile_box(0).dim(1).size(), 100);
}

TEST(Tiling, OversizeTileClamps) {
  const Box dom{{0, 9}, {0, 9}};
  const TileGrid g = make_tile_grid(dom, {100, 100, 0});
  EXPECT_EQ(g.total, 1);
  EXPECT_EQ(g.tile_box(0), dom);
}

TEST(Tiling, FootprintExtentBoundCoversActual) {
  // For every access shape used by multigrid, the plan-time bound must
  // dominate the runtime footprint extent at any alignment.
  const DimAccess shapes[] = {
      {1, 1, -1, 1},  // smoother
      {2, 1, -1, 1},  // restrict
      {1, 2, 0, 1},   // interp
      {1, 1, 0, 0},   // point-wise
  };
  for (const DimAccess& a : shapes) {
    for (index_t lo = 0; lo <= 3; ++lo) {
      for (index_t extent = 1; extent <= 40; ++extent) {
        const Box fp = footprint(
            Access{1, {a}}, Box{{lo, lo + extent - 1}});
        EXPECT_LE(fp.dim(0).size(), footprint_extent_bound(a, extent))
            << "access " << a << " lo " << lo << " extent " << extent;
      }
    }
  }
}

}  // namespace
}  // namespace polymg::poly
