#include <gtest/gtest.h>

#include "polymg/poly/interval.hpp"

namespace polymg::poly {
namespace {

TEST(Interval, EmptyAndSize) {
  EXPECT_TRUE(Interval{}.empty());
  EXPECT_EQ(Interval{}.size(), 0);
  EXPECT_FALSE((Interval{2, 2}.empty()));
  EXPECT_EQ((Interval{2, 2}.size()), 1);
  EXPECT_EQ((Interval{-3, 3}.size()), 7);
}

TEST(Interval, Contains) {
  const Interval iv{1, 8};
  EXPECT_TRUE(iv.contains(1));
  EXPECT_TRUE(iv.contains(8));
  EXPECT_FALSE(iv.contains(0));
  EXPECT_TRUE(iv.contains(Interval{2, 5}));
  EXPECT_FALSE(iv.contains(Interval{0, 5}));
  EXPECT_TRUE(iv.contains(Interval{}));  // empty always contained
}

TEST(Interval, IntersectHullDilate) {
  EXPECT_EQ(intersect({1, 8}, {5, 12}), (Interval{5, 8}));
  EXPECT_TRUE(intersect({1, 3}, {5, 7}).empty());
  EXPECT_EQ(hull({1, 3}, {5, 7}), (Interval{1, 7}));
  EXPECT_EQ(hull(Interval{}, {5, 7}), (Interval{5, 7}));
  EXPECT_EQ(dilate({2, 4}, 1), (Interval{1, 5}));
  EXPECT_EQ(dilate({2, 4}, -1), (Interval{3, 3}));
}

TEST(Interval, FloorCeilDiv) {
  EXPECT_EQ(floordiv(7, 2), 3);
  EXPECT_EQ(floordiv(-7, 2), -4);
  EXPECT_EQ(floordiv(-8, 2), -4);
  EXPECT_EQ(floordiv(0, 2), 0);
  EXPECT_EQ(ceildiv(7, 2), 4);
  EXPECT_EQ(ceildiv(-7, 2), -3);
  EXPECT_EQ(ceildiv(8, 4), 2);
}

}  // namespace
}  // namespace polymg::poly
