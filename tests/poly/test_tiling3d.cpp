#include <gtest/gtest.h>

#include "polymg/poly/tiling.hpp"

namespace polymg::poly {
namespace {

TEST(Tiling3d, PartitionCoversDisjointly) {
  const Box dom{{0, 33}, {0, 17}, {0, 129}};
  const TileGrid g = make_tile_grid(dom, {8, 8, 64});
  EXPECT_EQ(g.ntiles[0], 5);
  EXPECT_EQ(g.ntiles[1], 3);
  EXPECT_EQ(g.ntiles[2], 3);
  index_t covered = 0;
  for (index_t t = 0; t < g.total; ++t) {
    const Box b = g.tile_box(t);
    EXPECT_TRUE(dom.contains(b));
    covered += b.count();
  }
  EXPECT_EQ(covered, dom.count());
  // Spot-check disjointness on a sample of pairs (full n² too slow).
  for (index_t t = 0; t < g.total; ++t) {
    EXPECT_TRUE(intersect(g.tile_box(t),
                          g.tile_box((t + 1) % g.total))
                    .empty() ||
                g.total == 1);
  }
}

TEST(Tiling3d, FlatIndexLastDimFastest) {
  const Box dom{{0, 15}, {0, 15}, {0, 15}};
  const TileGrid g = make_tile_grid(dom, {8, 8, 8});
  // Tiles 0 and 1 differ only in the last dimension.
  const Box a = g.tile_box(0), b = g.tile_box(1);
  EXPECT_EQ(a.dim(0), b.dim(0));
  EXPECT_EQ(a.dim(1), b.dim(1));
  EXPECT_NE(a.dim(2).lo, b.dim(2).lo);
}

}  // namespace
}  // namespace polymg::poly
