#include <gtest/gtest.h>

#include "polymg/poly/access.hpp"

namespace polymg::poly {
namespace {

TEST(Access, IdentityFootprint) {
  const Access a = Access::identity(2);
  const Box r{{1, 8}, {1, 8}};
  EXPECT_EQ(footprint(a, r), r);
  EXPECT_TRUE(a.is_unit_scale());
}

TEST(Access, StencilFootprintDilates) {
  Access a = Access::identity(2);
  a.d[0] = DimAccess{1, 1, -1, 1};
  a.d[1] = DimAccess{1, 1, -2, 2};
  const Box fp = footprint(a, Box{{4, 8}, {4, 8}});
  EXPECT_EQ(fp.dim(0), (Interval{3, 9}));
  EXPECT_EQ(fp.dim(1), (Interval{2, 10}));
}

TEST(Access, RestrictScaleTwo) {
  // Restrict reads input(2x + [-1, 1]): coarse [1, 8] needs fine [1, 17].
  Access a;
  a.ndim = 2;
  a.d[0] = a.d[1] = DimAccess{2, 1, -1, 1};
  const Box fp = footprint(a, Box{{1, 8}, {1, 8}});
  EXPECT_EQ(fp.dim(0), (Interval{1, 17}));
  EXPECT_FALSE(a.is_unit_scale());
}

TEST(Access, InterpScaleHalfUsesFloor) {
  // Interp reads input(x/2 + [0, 1]): fine [1, 16] needs coarse [0, 9].
  Access a;
  a.ndim = 2;
  a.d[0] = a.d[1] = DimAccess{1, 2, 0, 1};
  const Box fp = footprint(a, Box{{1, 16}, {1, 16}});
  EXPECT_EQ(fp.dim(0), (Interval{0, 9}));
}

TEST(Access, MergeTakesOffsetHull) {
  Access a = Access::identity(2);
  a.d[0] = DimAccess{1, 1, -1, 0};
  Access b = Access::identity(2);
  b.d[0] = DimAccess{1, 1, 0, 2};
  const Access m = merge(a, b);
  EXPECT_EQ(m.d[0], (DimAccess{1, 1, -1, 2}));
}

TEST(Access, MergeRejectsMixedScales) {
  Access a = Access::identity(2);
  Access b = Access::identity(2);
  b.d[0] = DimAccess{2, 1, 0, 0};
  EXPECT_THROW((void)merge(a, b), Error);
}

TEST(Access, ComposeCancelsRestrictInterp) {
  // interp(x/2) after restrict(2x) is unit scale overall.
  Access restrict_a;
  restrict_a.ndim = 1;
  restrict_a.d[0] = DimAccess{2, 1, -1, 1};
  Access interp_a;
  interp_a.ndim = 1;
  interp_a.d[0] = DimAccess{1, 2, 0, 1};
  const Access c = compose(restrict_a, interp_a);
  EXPECT_EQ(c.d[0].num, c.d[0].den);
}

TEST(Access, ComposeFootprintIsConservative) {
  // The composed access footprint must cover the two-step footprint.
  Access inner;  // B reads A at 2x + [-1, 1]
  inner.ndim = 1;
  inner.d[0] = DimAccess{2, 1, -1, 1};
  Access outer;  // C reads B at x/2 + [0, 1]
  outer.ndim = 1;
  outer.d[0] = DimAccess{1, 2, 0, 1};
  const Access c = compose(inner, outer);
  for (index_t lo = 0; lo <= 5; ++lo) {
    const Box region{{lo, lo + 7}};
    const Box two_step = footprint(inner, footprint(outer, region));
    const Box direct = footprint(c, region);
    EXPECT_TRUE(direct.contains(two_step))
        << "direct " << direct << " vs " << two_step;
  }
}

}  // namespace
}  // namespace polymg::poly
