#include <gtest/gtest.h>

#include "polymg/poly/box.hpp"

namespace polymg::poly {
namespace {

TEST(Box, CountAndEmpty) {
  const Box b = Box::cube(2, 0, 9);
  EXPECT_EQ(b.count(), 100);
  EXPECT_FALSE(b.empty());
  Box e(2);
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.count(), 0);
  EXPECT_EQ(Box::cube(3, 1, 4).count(), 64);
}

TEST(Box, Contains) {
  const Box outer = Box::cube(2, 0, 10);
  EXPECT_TRUE(outer.contains(Box::cube(2, 2, 8)));
  EXPECT_FALSE(outer.contains(Box::cube(2, 2, 11)));
  EXPECT_TRUE(outer.contains_point({0, 10, 0}));
  EXPECT_FALSE(outer.contains_point({0, 11, 0}));
}

TEST(Box, IntersectHull) {
  const Box a{{0, 5}, {0, 5}};
  const Box b{{3, 9}, {4, 9}};
  const Box i = intersect(a, b);
  EXPECT_EQ(i.dim(0), (Interval{3, 5}));
  EXPECT_EQ(i.dim(1), (Interval{4, 5}));
  const Box h = hull(a, b);
  EXPECT_EQ(h.dim(0), (Interval{0, 9}));
  EXPECT_EQ(h.dim(1), (Interval{0, 9}));
  EXPECT_EQ(hull(Box{}, a), a);
}

TEST(Box, Dilate) {
  const Box d = dilate(Box::cube(3, 2, 5), 2);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(d.dim(i), (Interval{0, 7}));
}

}  // namespace
}  // namespace polymg::poly
