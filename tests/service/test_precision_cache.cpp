// Plan-cache signatures must separate precision policies: a mixed plan
// and a double plan for the same problem are different compiled
// artifacts (different dtypes baked into kernels) and must never share
// a cache entry.
#include <gtest/gtest.h>

#include "polymg/service/plan_cache.hpp"

namespace polymg {
namespace {

solvers::CycleConfig cache_cfg() {
  solvers::CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = 63;
  cfg.levels = 3;
  return cfg;
}

TEST(PrecisionCache, SignatureSeparatesPrecisionModes) {
  const solvers::CycleConfig cfg = cache_cfg();
  opt::CompileOptions dbl;
  opt::CompileOptions mix = dbl;
  mix.precision.mode = opt::Precision::Mixed;
  opt::CompileOptions flt = dbl;
  flt.precision.mode = opt::Precision::Float;
  opt::CompileOptions mix1 = mix;
  mix1.precision.crossover = 1;

  const std::string sd = service::PlanCache::signature(cfg, dbl);
  const std::string sm = service::PlanCache::signature(cfg, mix);
  const std::string sf = service::PlanCache::signature(cfg, flt);
  const std::string sm1 = service::PlanCache::signature(cfg, mix1);
  EXPECT_NE(sd, sm);
  EXPECT_NE(sd, sf);
  EXPECT_NE(sm, sf);
  EXPECT_NE(sm, sm1) << "crossover must be part of the signature";
}

TEST(PrecisionCache, MixedAndDoubleGetDistinctPlans) {
  service::PlanCache cache;
  const solvers::CycleConfig cfg = cache_cfg();
  opt::CompileOptions dbl;
  dbl.jit = opt::JitMode::Off;  // keep this test toolchain-independent
  opt::CompileOptions mix = dbl;
  mix.precision.mode = opt::Precision::Mixed;

  auto pd = cache.plan_for(cfg, dbl);
  auto pm = cache.plan_for(cfg, mix);
  ASSERT_NE(pd, nullptr);
  ASSERT_NE(pm, nullptr);
  EXPECT_NE(pd.get(), pm.get());
  EXPECT_EQ(cache.size(), 2u);
  // And a repeat of each is a hit on its own entry.
  EXPECT_EQ(cache.plan_for(cfg, dbl).get(), pd.get());
  EXPECT_EQ(cache.plan_for(cfg, mix).get(), pm.get());
  EXPECT_EQ(cache.size(), 2u);

  // The mixed plan actually differs: some storage is float.
  bool any_f32 = false;
  for (std::size_t i = 0; i < pm->pipe.funcs.size(); ++i) {
    any_f32 |= pm->dtype_of_func(static_cast<int>(i)) == grid::DType::F32;
  }
  EXPECT_TRUE(any_f32);
  for (std::size_t i = 0; i < pd->pipe.funcs.size(); ++i) {
    EXPECT_EQ(pd->dtype_of_func(static_cast<int>(i)), grid::DType::F64);
  }
}

}  // namespace
}  // namespace polymg
