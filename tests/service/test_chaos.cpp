// Chaos sweep (DESIGN.md §15): every registered fault site is armed
// against a LIVE, watchdog-enabled service and the same liveness
// invariants are asserted each time — every request terminates with an
// honest status, the service answers a clean probe after the fault is
// disarmed, and shutdown leaks zero workers. bench_chaos runs the full
// site × axis cross-product and emits BENCH_chaos.json; this suite is
// the ctest-shaped core of it.
//
// Naming: the ChaosLite* tests are the cheap deterministic subset the
// sanitizer CI runs (`ctest -L chaos -R ChaosLite`); the full sweep
// iterates fault::FaultInjector::list_sites() so a new site can never
// be added without being chaos-tested (the sweep picks it up by
// construction).
#include "polymg/service/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "polymg/common/fault.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/obs/trace.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/solvers/guarded.hpp"

namespace polymg::service {
namespace {

using solvers::CycleConfig;
using solvers::PoissonProblem;

class ChaosSweep : public ::testing::Test {
protected:
  void SetUp() override {
    fault::FaultInjector::instance().reset();
    // A wedged injected toolchain must resolve within the test, not the
    // default 10 s compile budget.
    setenv("POLYMG_JIT_TIMEOUT_MS", "300", 1);
  }
  void TearDown() override {
    fault::FaultInjector::instance().reset();
    unsetenv("POLYMG_JIT_TIMEOUT_MS");
    if (obs::TraceSession::active()) obs::TraceSession::stop();
  }
};

CycleConfig small2d(poly::index_t n = 31) {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = n;
  cfg.levels = 3;
  cfg.n2 = 20;
  return cfg;
}

SolveRequest make_req(const std::string& tenant) {
  SolveRequest req;
  req.cfg = small2d();
  req.opts = opt::CompileOptions::for_variant(opt::Variant::OptPlus, 2);
  const PoissonProblem p = PoissonProblem::manufactured(2, req.cfg.n);
  req.rhs = p.f.clone();
  req.rel_tol = 1e-8;
  req.tenant = tenant;
  return req;
}

/// Watchdog-enabled chaos service. stall_timeout is generous enough
/// that a cold compile or an oracle recompile (both legitimately freeze
/// the heartbeat) never reads as a stall, while an injected solve.stall
/// (uncooperative, 60 s) still escalates to worker replacement within
/// ~0.5 s.
ServiceConfig chaos_config() {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 16;
  cfg.stall_timeout_ms = 150.0;
  cfg.watchdog_poll_ms = 5.0;
  cfg.stall_fault_ms = 60000.0;
  cfg.shutdown_drain_ms = 10000.0;
  cfg.shutdown_kill_grace_ms = 1000.0;
  return cfg;
}

/// Terminal statuses a chaos request may honestly end with. Anything
/// else — or a wait() that never returns — is a liveness bug.
bool honest_terminal(ErrorCode code) {
  switch (code) {
    case ErrorCode::Generic:           // served (converged or ladder-exhausted)
    case ErrorCode::Overloaded:        // shed / resource-exhausted
    case ErrorCode::DeadlineExceeded:
    case ErrorCode::Cancelled:
    case ErrorCode::SolveStalled:
    case ErrorCode::WorkerLost:
      return true;
    default:
      return false;
  }
}

/// One chaos round: arm `site` for `count` firings, run a small request
/// burst, assert every request terminates honestly, then (fault gone)
/// assert the service still answers and shuts down without leaking.
void run_site(const std::string& site, long count, int burst = 3) {
  SCOPED_TRACE("site " + site);
  SolveService svc(chaos_config());

  // Warm one plan through admission first so the burst exercises the
  // serving path, not cold-compile latency, under the watchdog.
  {
    const auto warm = svc.submit(make_req("warm"));
    ASSERT_TRUE(warm.admitted);
    const SolveResult res = svc.wait(warm.ticket);
    ASSERT_TRUE(res.converged) << to_string(res.status);
  }

  {
    fault::ScopedFault fault(site, count);
    std::vector<std::uint64_t> tickets;
    for (int i = 0; i < burst; ++i) {
      const auto adm = svc.submit(make_req("chaos"));
      if (adm.admitted) tickets.push_back(adm.ticket);
    }
    ASSERT_FALSE(tickets.empty());
    for (const std::uint64_t t : tickets) {
      const SolveResult res = svc.wait(t);  // liveness: must return
      EXPECT_TRUE(honest_terminal(res.status))
          << "ticket " << t << " ended as " << to_string(res.status);
    }
  }

  // The fault is disarmed: the service must answer a clean probe.
  const auto probe = svc.submit(make_req("probe"));
  ASSERT_TRUE(probe.admitted);
  const SolveResult res = svc.wait(probe.ticket);
  EXPECT_TRUE(res.converged) << "post-fault probe: " << to_string(res.status);

  svc.shutdown();
  EXPECT_EQ(svc.leaked_workers(), 0);
}

// ---------------------------------------------------------------------
// ChaosLite: the cheap deterministic subset the sanitizer CI runs.
// ---------------------------------------------------------------------

// The service-layer sites, one firing each: transient reject (retry
// ladder), injected slowness (deadline machinery), allocation failure
// (Overloaded + retry-after) and a solve crash (checkpoint restart).
TEST_F(ChaosSweep, ChaosLiteServiceSites) {
  run_site(fault::kServiceReject, 1);
  run_site(fault::kServiceSlow, 1);
  run_site(fault::kAllocFail, 1);
  run_site(fault::kSolveCrash, 1);
}

// The watchdog escalation under an uncooperative stall, end to end:
// detection, worker replacement, post-fault probe, clean shutdown.
TEST_F(ChaosSweep, ChaosLiteStallEscalation) {
  const std::uint64_t lost0 =
      obs::Metrics::instance().counter("service.workers_lost").value();
  run_site(fault::kSolveStall, 1);
  EXPECT_GE(obs::Metrics::instance().counter("service.workers_lost").value(),
            lost0 + 1);
}

// Data-corruption sites: the guarded oracle absorbs them and the
// requests still end honestly (typically converged via fallback).
TEST_F(ChaosSweep, ChaosLiteCorruptionSites) {
  run_site(fault::kKernelOutput, 1);
  run_site(fault::kKernelBitflip, 1);
}

// ---------------------------------------------------------------------
// The full sweep: every site the injector knows, two firings each.
// ---------------------------------------------------------------------

// Sites the serving path never checks (distributed-only sites on a
// single-process service, JIT sites on an all-linear plan) stay armed
// without firing — the liveness invariants must hold all the same.
TEST_F(ChaosSweep, AllSitesTerminateAndServiceAnswers) {
  const std::vector<std::string> sites =
      fault::FaultInjector::list_sites();
  ASSERT_GE(sites.size(), 15u);
  for (const std::string& site : sites) {
    run_site(site, /*count=*/2, /*burst=*/2);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Supervision activity is observable: a stall round under a trace
// session leaves StallDetected / WorkerLost events for the post-mortem.
TEST_F(ChaosSweep, SupervisionEventsAreTraced) {
  // Tracing's per-thread rings are single-writer: run one worker.
  ServiceConfig cfg = chaos_config();
  cfg.workers = 1;
  obs::TraceSession::start();
  {
    SolveService svc(cfg);
    const auto warm = svc.submit(make_req("warm"));
    ASSERT_TRUE(warm.admitted);
    (void)svc.wait(warm.ticket);
    fault::ScopedFault stall(fault::kSolveStall, 1);
    const auto adm = svc.submit(make_req("chaos"));
    ASSERT_TRUE(adm.admitted);
    const SolveResult res = svc.wait(adm.ticket);
    EXPECT_TRUE(res.status == ErrorCode::SolveStalled ||
                res.status == ErrorCode::WorkerLost)
        << to_string(res.status);
    svc.shutdown();
    EXPECT_EQ(svc.leaked_workers(), 0);
  }
  obs::TraceSession::stop();
  bool saw_stall = false;
  bool saw_lost = false;
  for (const obs::TraceEvent& e : obs::TraceSession::snapshot()) {
    saw_stall = saw_stall || e.kind == obs::EventKind::StallDetected;
    saw_lost = saw_lost || e.kind == obs::EventKind::WorkerLost;
  }
  EXPECT_TRUE(saw_stall);
  EXPECT_TRUE(saw_lost);
}

}  // namespace
}  // namespace polymg::service
