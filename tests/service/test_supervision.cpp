// Self-healing supervision (DESIGN.md §15): the solve watchdog's
// escalation ladder against injected uncooperative stalls, the bounded
// shutdown drain, cancel racing dequeue, and the progress-epoch
// heartbeat the whole plane is built on.
//
// Timing assertions use generous multiples of the configured budgets so
// a loaded CI host cannot flake them: we assert "well under the
// uncooperative stall length", never "within one poll period".
#include "polymg/service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "polymg/common/fault.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/obs/report.hpp"
#include "polymg/obs/trace.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/solvers/guarded.hpp"

namespace polymg::service {
namespace {

using Clock = std::chrono::steady_clock;
using solvers::CycleConfig;
using solvers::PoissonProblem;

std::uint64_t ctr(const char* name) {
  return obs::Metrics::instance().counter(name).value();
}

double ms_since(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              t0)
             .count() /
         1e6;
}

class SupervisionTest : public ::testing::Test {
protected:
  void SetUp() override { fault::FaultInjector::instance().reset(); }
  void TearDown() override {
    fault::FaultInjector::instance().reset();
    if (obs::TraceSession::active()) obs::TraceSession::stop();
  }
};

CycleConfig small2d(poly::index_t n = 31) {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = n;
  cfg.levels = 3;
  cfg.n2 = 20;
  return cfg;
}

SolveRequest make_req(const CycleConfig& cfg, const std::string& tenant,
                      double rel_tol = 1e-8, double deadline_ms = 0.0) {
  SolveRequest req;
  req.cfg = cfg;
  req.opts = opt::CompileOptions::for_variant(opt::Variant::OptPlus, cfg.ndim);
  const PoissonProblem p = PoissonProblem::manufactured(cfg.ndim, cfg.n);
  req.rhs = p.f.clone();
  req.rel_tol = rel_tol;
  req.tenant = tenant;
  req.deadline_ms = deadline_ms;
  return req;
}

/// Watchdog-enabled config with fast stages so tests finish in tens of
/// milliseconds.
ServiceConfig watched_config(double stall_timeout_ms,
                             double stall_fault_ms) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.stall_timeout_ms = stall_timeout_ms;
  cfg.watchdog_poll_ms = 2.0;
  cfg.stall_fault_ms = stall_fault_ms;
  return cfg;
}

// ---------------------------------------------------------------------
// The heartbeat itself.
// ---------------------------------------------------------------------

// Every solve advances the attached progress sink: the executor bumps at
// every granule and the solver once per cycle, so a healthy solve's
// heartbeat moves by orders of magnitude more than the cycle count.
TEST_F(SupervisionTest, SolveAdvancesProgressHeartbeat) {
  const CycleConfig cfg = small2d();
  PoissonProblem p = PoissonProblem::manufactured(cfg.ndim, cfg.n);
  std::atomic<std::uint64_t> beat{0};
  solvers::GuardPolicy pol;
  pol.progress = &beat;
  const auto opts =
      opt::CompileOptions::for_variant(opt::Variant::OptPlus, cfg.ndim);
  const solvers::SolveReport rep =
      solvers::guarded_solve(cfg, p, 1e-8, pol, opts);
  EXPECT_TRUE(rep.converged);
  EXPECT_GT(beat.load(), static_cast<std::uint64_t>(rep.total_cycles));
}

// ---------------------------------------------------------------------
// The escalation ladder against injected stalls.
// ---------------------------------------------------------------------

// A stall that outlives stage 1 but ends before stage 3: the watchdog's
// cooperative cancel resolves it and the request surfaces SolveStalled
// with a retry-after hint — an honest "the replica stalled, come back"
// instead of a silent multi-second hang.
TEST_F(SupervisionTest, StallResolvedBySupervisionIsSolveStalled) {
  // Stage 1 at 40 ms frozen, stage 3 at 120 ms; the stall lifts at
  // 60 ms, after which the solve promptly honours the stage-1 cancel —
  // a 60 ms cushion before stage 3 could misfire on a loaded host.
  SolveService svc(watched_config(/*stall_timeout_ms=*/40.0,
                                  /*stall_fault_ms=*/60.0));
  // Warm the plan cache and session first so the post-stall heartbeat
  // resumes immediately instead of waiting out a cold compile.
  const auto warm = svc.submit(make_req(small2d(), "t"));
  ASSERT_TRUE(warm.admitted);
  ASSERT_TRUE(svc.wait(warm.ticket).converged);

  const std::uint64_t stalls0 = ctr("service.stalls_detected");
  fault::ScopedFault stall(fault::kSolveStall, 1);

  const auto t0 = Clock::now();
  const auto adm = svc.submit(make_req(small2d(), "t"));
  ASSERT_TRUE(adm.admitted);
  const SolveResult res = svc.wait(adm.ticket);
  EXPECT_EQ(res.status, ErrorCode::SolveStalled);
  EXPECT_GT(res.retry_after_ms, 0.0);
  // Ended by supervision, not by the stall running a 60 s course.
  EXPECT_LT(ms_since(t0), 5000.0);
  EXPECT_GE(ctr("service.stalls_detected"), stalls0 + 1);

  // The service answers afterwards.
  const auto adm2 = svc.submit(make_req(small2d(), "t"));
  ASSERT_TRUE(adm2.admitted);
  EXPECT_TRUE(svc.wait(adm2.ticket).converged);
}

// A fully uncooperative stall (ignores the cancel, outlives every
// stage): the worker is declared lost, the waiter gets WorkerLost +
// retry-after, a replacement worker serves the next request, and
// shutdown still joins every thread.
TEST_F(SupervisionTest, UncooperativeStallLosesWorkerAndReplaces) {
  const std::uint64_t lost0 = ctr("service.workers_lost");
  const std::uint64_t quar0 = ctr("service.sessions_quarantined");
  SolveService svc(watched_config(/*stall_timeout_ms=*/20.0,
                                  /*stall_fault_ms=*/60000.0));
  fault::ScopedFault stall(fault::kSolveStall, 1);

  const auto t0 = Clock::now();
  const auto adm = svc.submit(make_req(small2d(), "t"));
  ASSERT_TRUE(adm.admitted);
  const SolveResult res = svc.wait(adm.ticket);
  EXPECT_EQ(res.status, ErrorCode::WorkerLost);
  EXPECT_GT(res.retry_after_ms, 0.0);
  EXPECT_LT(ms_since(t0), 10000.0);  // nowhere near the 60 s stall
  EXPECT_EQ(ctr("service.workers_lost"), lost0 + 1);
  EXPECT_GE(ctr("service.sessions_quarantined"), quar0 + 1);

  // The replacement worker answers.
  const auto adm2 = svc.submit(make_req(small2d(), "t"));
  ASSERT_TRUE(adm2.admitted);
  EXPECT_TRUE(svc.wait(adm2.ticket).converged);

  // The killed zombie exits at its next poll: shutdown must not leak.
  svc.shutdown();
  EXPECT_EQ(svc.leaked_workers(), 0);
}

// Supervision statuses land in the tenant roll-up and the stalled
// column renders.
TEST_F(SupervisionTest, StallsVisibleInTenantStats) {
  SolveService svc(watched_config(40.0, 60.0));
  const auto warm = svc.submit(make_req(small2d(), "acme"));
  ASSERT_TRUE(warm.admitted);
  (void)svc.wait(warm.ticket);
  fault::ScopedFault stall(fault::kSolveStall, 1);
  const auto adm = svc.submit(make_req(small2d(), "acme"));
  ASSERT_TRUE(adm.admitted);
  (void)svc.wait(adm.ticket);
  const auto stats = svc.tenant_stats();
  ASSERT_TRUE(stats.count("acme"));
  EXPECT_EQ(stats.at("acme").stalled, 1);
  obs::RunReport rr;
  svc.attach_tenants(rr);
  ASSERT_EQ(rr.tenant_lines.size(), 1u);
  EXPECT_NE(rr.tenant_lines[0].find("stalled"), std::string::npos);
}

// ---------------------------------------------------------------------
// alloc.fail: resource exhaustion is Overloaded, never a dead worker.
// ---------------------------------------------------------------------

TEST_F(SupervisionTest, AllocFailureResolvesOverloadedWithHint) {
  ServiceConfig cfg;
  cfg.workers = 1;
  SolveService svc(cfg);
  fault::ScopedFault alloc(fault::kAllocFail, 1);
  const auto adm = svc.submit(make_req(small2d(), "t"));
  ASSERT_TRUE(adm.admitted);
  const SolveResult res = svc.wait(adm.ticket);
  EXPECT_EQ(res.status, ErrorCode::Overloaded);
  EXPECT_GT(res.retry_after_ms, 0.0);
  // The worker survived: the very next request is served normally.
  const auto adm2 = svc.submit(make_req(small2d(), "t"));
  ASSERT_TRUE(adm2.admitted);
  EXPECT_TRUE(svc.wait(adm2.ticket).converged);
}

// ---------------------------------------------------------------------
// Bounded shutdown.
// ---------------------------------------------------------------------

// Shutdown under load: a full queue, in-flight solves and one worker
// stuck in an uncooperative stall. The drain deadline plus the kill
// grace bound the whole call; every ticket resolves to an honest
// terminal status and nothing hangs.
TEST_F(SupervisionTest, ShutdownUnderLoadIsBounded) {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 8;
  cfg.stall_fault_ms = 60000.0;       // uncooperative without the kill flag
  cfg.shutdown_drain_ms = 100.0;      // phase 1: short drain
  cfg.shutdown_kill_grace_ms = 500.0; // phase 2: enough for the 1 ms poll
  SolveService svc(cfg);

  // One worker wedges on the first dequeue; the rest of the load queues.
  fault::ScopedFault stall(fault::kSolveStall, 1);
  std::vector<std::uint64_t> tickets;
  for (int i = 0; i < 6; ++i) {
    const auto adm = svc.submit(make_req(small2d(), "t"));
    if (adm.admitted) tickets.push_back(adm.ticket);
  }
  ASSERT_FALSE(tickets.empty());
  // Let the stalled worker actually dequeue before shutting down.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  const auto t0 = Clock::now();
  svc.shutdown();
  // Generous bound: drain + grace + scheduling noise, far below the
  // 60 s the stall would otherwise hold the join hostage for.
  EXPECT_LT(ms_since(t0), 10000.0);

  for (const std::uint64_t t : tickets) {
    const SolveResult res = svc.wait(t);
    EXPECT_TRUE(res.status == ErrorCode::Cancelled ||
                res.status == ErrorCode::SolveStalled ||
                res.status == ErrorCode::WorkerLost ||
                res.status == ErrorCode::DeadlineExceeded ||
                res.status == ErrorCode::Generic)
        << "ticket " << t << " ended as " << to_string(res.status);
  }
  // The stall polls the kill flag every 1 ms, so the grace window is
  // enough: no worker needed detaching.
  EXPECT_EQ(svc.leaked_workers(), 0);
}

// Zero kill grace forces the detach path: shutdown must still return,
// count the leak, surface a RunReport warning, and the ticket held by
// the stuck worker must resolve rather than hang its waiter.
TEST_F(SupervisionTest, ShutdownDetachesTrulyStuckWorker) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.stall_fault_ms = 1000.0;       // wedged through both phases...
  cfg.shutdown_drain_ms = 30.0;
  cfg.shutdown_kill_grace_ms = 0.0;  // ...and given no grace at all
  SolveService svc(cfg);
  fault::ScopedFault stall(fault::kSolveStall, 1);
  const auto adm = svc.submit(make_req(small2d(), "t"));
  ASSERT_TRUE(adm.admitted);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  const auto t0 = Clock::now();
  svc.shutdown();
  EXPECT_LT(ms_since(t0), 5000.0);

  const SolveResult res = svc.wait(adm.ticket);
  EXPECT_TRUE(res.status == ErrorCode::WorkerLost ||
              res.status == ErrorCode::SolveStalled)
      << to_string(res.status);
  if (svc.leaked_workers() > 0) {
    obs::RunReport rr;
    svc.attach_tenants(rr);
    ASSERT_FALSE(rr.warnings.empty());
    EXPECT_NE(rr.warnings[0].find("detached"), std::string::npos);
    EXPECT_NE(rr.render().find("WARNING"), std::string::npos);
  }
  // The kill flag ends the stall within a millisecond of its next poll;
  // give any detached thread time to finish its exit bookkeeping before
  // the service (and its mutex) are destroyed.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
}

// ---------------------------------------------------------------------
// Cancel racing dequeue.
// ---------------------------------------------------------------------

// A cancel storm racing the workers' dequeues: every ticket must
// resolve to a terminal status (served or cancelled, nothing stuck),
// the service must stay healthy, and shutdown must be clean. This is
// the classic lost-wakeup / double-completion race surface.
TEST_F(SupervisionTest, CancelRacingDequeueAlwaysTerminates) {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 64;
  cfg.tenant_quota = 0;
  SolveService svc(cfg);

  std::vector<std::uint64_t> tickets;
  for (int i = 0; i < 24; ++i) {
    const auto adm = svc.submit(make_req(small2d(15), "t", 1e-6));
    if (adm.admitted) tickets.push_back(adm.ticket);
  }
  // Cancel every other ticket from a racing thread while workers drain.
  std::thread canceller([&] {
    for (std::size_t i = 0; i < tickets.size(); i += 2) {
      svc.cancel(tickets[i]);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  int served = 0;
  int cancelled = 0;
  for (const std::uint64_t t : tickets) {
    const SolveResult res = svc.wait(t);
    if (res.status == ErrorCode::Cancelled) {
      ++cancelled;
    } else {
      EXPECT_EQ(res.status, ErrorCode::Generic);
      EXPECT_TRUE(res.converged);
      ++served;
    }
  }
  canceller.join();
  EXPECT_EQ(served + cancelled, static_cast<int>(tickets.size()));
  EXPECT_GT(served, 0);  // the un-cancelled half must actually serve
  svc.shutdown();
  EXPECT_EQ(svc.leaked_workers(), 0);
}

// Other tenants' requests keep being served (and meeting deadlines)
// while one worker is wedged: the watchdog isolates the blast radius to
// the stalled request.
TEST_F(SupervisionTest, StallDoesNotStarveOtherTenants) {
  ServiceConfig cfg = watched_config(/*stall_timeout_ms=*/20.0,
                                     /*stall_fault_ms=*/60000.0);
  cfg.workers = 2;
  cfg.queue_capacity = 32;
  SolveService svc(cfg);
  fault::ScopedFault stall(fault::kSolveStall, 1);

  const auto bad = svc.submit(make_req(small2d(), "victim"));
  ASSERT_TRUE(bad.admitted);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::vector<std::uint64_t> good;
  for (int i = 0; i < 8; ++i) {
    const auto adm = svc.submit(make_req(small2d(15), "bystander", 1e-6));
    if (adm.admitted) good.push_back(adm.ticket);
  }
  for (const std::uint64_t t : good) {
    const SolveResult res = svc.wait(t);
    EXPECT_TRUE(res.converged) << to_string(res.status);
  }
  const SolveResult res = svc.wait(bad.ticket);
  EXPECT_TRUE(res.status == ErrorCode::SolveStalled ||
              res.status == ErrorCode::WorkerLost);
  svc.shutdown();
  EXPECT_EQ(svc.leaked_workers(), 0);
}

}  // namespace
}  // namespace polymg::service
