// The deadline-aware solve service end to end: cooperative cancellation
// at executor and solver level (with the bit-exactness guarantee for the
// best-effort iterate), plan-cache hit behaviour, admission control,
// retry/backoff under injected faults, and the overload degradation
// ladder (DESIGN.md §10).
#include "polymg/service/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "polymg/common/cancel.hpp"
#include "polymg/common/fault.hpp"
#include "polymg/common/parallel.hpp"
#include "polymg/obs/exposition.hpp"
#include "polymg/obs/metrics.hpp"
#include "polymg/obs/trace.hpp"
#include "polymg/opt/compile.hpp"
#include "polymg/runtime/executor.hpp"
#include "polymg/solvers/metrics.hpp"

namespace polymg::service {
namespace {

using solvers::CycleConfig;
using solvers::GuardPolicy;
using solvers::PoissonProblem;
using solvers::RungKind;
using solvers::SolveReport;

class ServiceTest : public ::testing::Test {
protected:
  void SetUp() override { fault::FaultInjector::instance().reset(); }
  void TearDown() override {
    fault::FaultInjector::instance().reset();
    if (obs::TraceSession::active()) obs::TraceSession::stop();
  }
};

CycleConfig small2d(poly::index_t n = 63) {
  CycleConfig cfg;
  cfg.ndim = 2;
  cfg.n = n;
  cfg.levels = 4;
  cfg.n2 = 20;
  return cfg;
}

SolveRequest make_req(const CycleConfig& cfg, const std::string& tenant,
                      double rel_tol = 1e-8, double deadline_ms = 0.0) {
  SolveRequest req;
  req.cfg = cfg;
  req.opts = opt::CompileOptions::for_variant(opt::Variant::OptPlus, cfg.ndim);
  const PoissonProblem p = PoissonProblem::manufactured(cfg.ndim, cfg.n);
  req.rhs = p.f.clone();
  req.rel_tol = rel_tol;
  req.tenant = tenant;
  req.deadline_ms = deadline_ms;
  return req;
}

/// A request that cannot converge and runs for many seconds unless
/// cancelled — the worker-blocking tool of the admission tests.
SolveRequest blocker_req(const std::string& tenant) {
  SolveRequest req = make_req(small2d(255), tenant, /*rel_tol=*/1e-300);
  return req;
}

/// ServiceConfig whose guard never ends a blocker early (the monitor's
/// stagnation classifier would otherwise finish it within ~20 cycles).
ServiceConfig patient_config() {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.guard.max_cycles = 100000;
  cfg.guard.stagnation_window = 100000;
  return cfg;
}

void spin_until_drained(SolveService& svc) {
  while (svc.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// ---------------------------------------------------------------------
// Cancellation token plumbing, bottom up.

TEST_F(ServiceTest, ExecutorHonorsCancelToken) {
  const CycleConfig cfg = small2d();
  const auto opts = opt::CompileOptions::for_variant(opt::Variant::OptPlus, 2);
  runtime::Executor ex(opt::compile(solvers::build_cycle(cfg), opts));
  PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
  const std::vector<grid::View> ext = {p.v_view(), p.f_view()};

  CancelToken tok;
  ex.set_cancel_token(&tok);
  tok.cancel();
  try {
    ex.run(ext);
    FAIL() << "cancelled run must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Cancelled);
  }

  tok.reset();
  tok.set_deadline_after_ns(-1);  // already expired
  try {
    ex.run(ext);
    FAIL() << "expired-deadline run must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::DeadlineExceeded);
  }

  // The abort is per-run state: clearing the token makes the same
  // executor serve again (workers reuse sessions after a trip).
  tok.reset();
  EXPECT_NO_THROW(ex.run(ext));
  ex.set_cancel_token(nullptr);
  EXPECT_NO_THROW(ex.run(ext));
}

// A deadline that trips mid-solve stops it with status DeadlineExceeded
// and leaves EXACTLY the iterate of the last completed cycle in p.v —
// bit-for-bit the same as running that many cycles undisturbed, for both
// schedules and any thread count (the aborted cycle never reaches its
// copy-out, and completed cycles are bit-exact by the scheduler's
// determinism guarantee).
TEST_F(ServiceTest, DeadlineStopKeepsBitExactBestIterate) {
  const CycleConfig cfg = small2d(255);
  for (const bool dep_sched : {false, true}) {
    for (const int threads : {1, max_threads()}) {
      const int prev = set_num_threads(threads);
      auto opts = opt::CompileOptions::for_variant(opt::Variant::OptPlus, 2);
      opts.dependence_schedule = dep_sched;

      PoissonProblem p = PoissonProblem::manufactured(2, cfg.n);
      CancelToken tok;
      GuardPolicy pol;
      pol.cancel = &tok;
      pol.max_cycles = 100000;
      pol.stagnation_window = 100000;
      tok.set_deadline_after_ms(25.0);
      const SolveReport rep = solvers::guarded_solve(cfg, p, 1e-300, pol,
                                                     opts);
      set_num_threads(prev);

      ASSERT_EQ(rep.status, ErrorCode::DeadlineExceeded) << rep.summary();
      EXPECT_TRUE(rep.deadline_hit);
      ASSERT_FALSE(rep.attempts.empty());
      EXPECT_EQ(rep.attempts.back().kind, RungKind::DeadlineStop);
      EXPECT_TRUE(std::isfinite(
          solvers::residual_norm(p.v_view(), p.f_view(), p.n, p.h)));

      // Reference: the same plan run for exactly the completed cycle
      // count, no deadline anywhere near it.
      PoissonProblem ref = PoissonProblem::manufactured(2, cfg.n);
      runtime::Executor ex(opt::compile(solvers::build_cycle(cfg), opts));
      const std::vector<grid::View> ext = {ref.v_view(), ref.f_view()};
      for (int c = 0; c < rep.total_cycles; ++c) {
        ex.run(ext);
        grid::copy_region(ref.v_view(), ex.output_view(0), ref.domain());
      }
      ASSERT_EQ(p.v.size(), ref.v.size());
      EXPECT_EQ(std::memcmp(p.v.data(), ref.v.data(),
                            p.v.size() * sizeof(double)),
                0)
          << "best-effort iterate diverged from the " << rep.total_cycles
          << "-cycle reference (dep_sched=" << dep_sched
          << ", threads=" << threads << ")";
    }
  }
}

// ---------------------------------------------------------------------
// Plan cache.

TEST_F(ServiceTest, PlanCacheHitCompilesNothing) {
  auto& compiles = obs::Metrics::instance().counter("opt.compiles");
  PlanCache pc;
  const CycleConfig cfg = small2d();
  const auto opts = opt::CompileOptions::for_variant(opt::Variant::OptPlus, 2);

  const auto before = compiles.value();
  const auto plan1 = pc.plan_for(cfg, opts);
  EXPECT_EQ(compiles.value(), before + 1);
  const auto plan2 = pc.plan_for(cfg, opts);
  EXPECT_EQ(plan1.get(), plan2.get()) << "hit must share the plan";
  EXPECT_EQ(compiles.value(), before + 1) << "hit must not recompile";
  EXPECT_EQ(pc.hits(), 1);
  EXPECT_EQ(pc.misses(), 1);

  // A different signature is a different plan.
  const auto plan3 = pc.plan_for(small2d(31), opts);
  EXPECT_NE(plan1.get(), plan3.get());
  EXPECT_EQ(pc.size(), 2u);
}

TEST_F(ServiceTest, WarmServiceServesWithoutRecompiling) {
  ServiceConfig cfg;
  cfg.workers = 1;
  SolveService svc(cfg);
  const CycleConfig prob = small2d();

  // Warm: the first request compiles the signature's plan (exactly once,
  // through the cache) and builds the worker's session executor.
  {
    const auto a = svc.submit(make_req(prob, "warm"));
    ASSERT_TRUE(a.admitted);
    const SolveResult res = svc.wait(a.ticket);
    EXPECT_TRUE(res.converged);
  }
  auto& compiles = obs::Metrics::instance().counter("opt.compiles");
  const auto before = compiles.value();
  for (int i = 0; i < 4; ++i) {
    const auto a = svc.submit(make_req(prob, "steady"));
    ASSERT_TRUE(a.admitted);
    const SolveResult res = svc.wait(a.ticket);
    EXPECT_TRUE(res.converged) << res.report.summary();
    EXPECT_TRUE(std::isfinite(res.iterate.data()[0]));
  }
  EXPECT_EQ(compiles.value(), before)
      << "warm-signature solves must perform zero plan compilations";
}

// ---------------------------------------------------------------------
// Admission control.

TEST_F(ServiceTest, TenantQuotaRejectsWithRetryAfter) {
  ServiceConfig cfg = patient_config();
  cfg.tenant_quota = 1;
  cfg.queue_capacity = 8;
  SolveService svc(cfg);

  const auto hog = svc.submit(blocker_req("hog"));
  ASSERT_TRUE(hog.admitted);

  // Second in-flight request of the same tenant: over quota.
  const auto over = svc.submit(make_req(small2d(), "hog"));
  EXPECT_FALSE(over.admitted);
  EXPECT_EQ(over.reason, ErrorCode::Overloaded);
  EXPECT_GT(over.retry_after_ms, 0.0);

  // Another tenant is unaffected — the quota is per tenant.
  const auto guest = svc.submit(make_req(small2d(), "guest"));
  EXPECT_TRUE(guest.admitted);

  ASSERT_TRUE(svc.cancel(hog.ticket));
  EXPECT_EQ(svc.wait(hog.ticket).status, ErrorCode::Cancelled);
  EXPECT_TRUE(svc.wait(guest.ticket).converged);

  const auto stats = svc.tenant_stats();
  EXPECT_EQ(stats.at("hog").rejected, 1);
  EXPECT_EQ(stats.at("hog").cancelled, 1);
  EXPECT_EQ(stats.at("guest").admitted, 1);
}

TEST_F(ServiceTest, FullQueueShedsWithRetryAfter) {
  ServiceConfig cfg = patient_config();
  cfg.queue_capacity = 1;
  SolveService svc(cfg);

  const auto blocker = svc.submit(blocker_req("t"));
  ASSERT_TRUE(blocker.admitted);
  spin_until_drained(svc);  // the worker holds it; the queue is empty

  const auto queued = svc.submit(make_req(small2d(), "t"));
  ASSERT_TRUE(queued.admitted);
  const auto shed = svc.submit(make_req(small2d(), "t"));
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.reason, ErrorCode::Overloaded);
  EXPECT_GT(shed.retry_after_ms, 0.0);

  ASSERT_TRUE(svc.cancel(blocker.ticket));
  EXPECT_EQ(svc.wait(blocker.ticket).status, ErrorCode::Cancelled);
  EXPECT_TRUE(svc.wait(queued.ticket).converged);
}

// ---------------------------------------------------------------------
// Cancellation and deadlines through the service.

TEST_F(ServiceTest, CancellationLeavesSessionsReusable) {
  ServiceConfig cfg = patient_config();
  SolveService svc(cfg);

  const auto a = svc.submit(blocker_req("t"));
  ASSERT_TRUE(a.admitted);
  spin_until_drained(svc);
  ASSERT_TRUE(svc.cancel(a.ticket));
  const SolveResult cancelled = svc.wait(a.ticket);
  EXPECT_EQ(cancelled.status, ErrorCode::Cancelled);
  EXPECT_TRUE(cancelled.report.cancelled);
  // Best-effort iterate: present and finite.
  ASSERT_GT(cancelled.iterate.size(), 0u);
  EXPECT_TRUE(std::isfinite(cancelled.iterate.data()[0]));
  EXPECT_FALSE(svc.cancel(a.ticket)) << "finished tickets cannot cancel";

  // The same worker (same session executor, same pools) serves the next
  // request of the same signature to convergence.
  const auto b = svc.submit(blocker_req("t"));
  ASSERT_TRUE(b.admitted);
  spin_until_drained(svc);
  ASSERT_TRUE(svc.cancel(b.ticket));
  EXPECT_EQ(svc.wait(b.ticket).status, ErrorCode::Cancelled);

  const auto c = svc.submit(make_req(small2d(255), "t"));
  ASSERT_TRUE(c.admitted);
  const SolveResult ok = svc.wait(c.ticket);
  EXPECT_TRUE(ok.converged) << ok.report.summary();
}

TEST_F(ServiceTest, DeadlineWhileQueuedAbandonsWithoutSolving) {
  ServiceConfig cfg = patient_config();
  SolveService svc(cfg);

  const auto blocker = svc.submit(blocker_req("t"));
  ASSERT_TRUE(blocker.admitted);
  spin_until_drained(svc);

  // Queue time counts against the deadline: this request's whole budget
  // burns while the blocker holds the only worker.
  const auto doomed =
      svc.submit(make_req(small2d(), "t", 1e-8, /*deadline_ms=*/20.0));
  ASSERT_TRUE(doomed.admitted);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  ASSERT_TRUE(svc.cancel(blocker.ticket));
  (void)svc.wait(blocker.ticket);

  const SolveResult res = svc.wait(doomed.ticket);
  EXPECT_EQ(res.status, ErrorCode::DeadlineExceeded);
  EXPECT_EQ(res.report.total_cycles, 0) << "must not touch a core";
  EXPECT_GT(res.deadline_overshoot_ms, 0.0);
  EXPECT_EQ(svc.tenant_stats().at("t").deadline_hits, 1);
}

// ---------------------------------------------------------------------
// Fault injection: transient rejects retry with backoff and recover.

TEST_F(ServiceTest, RetryBackoffRecoversFromInjectedReject) {
  auto& fi = fault::FaultInjector::instance();
  fi.arm(fault::kServiceReject, /*count=*/2, /*probability=*/1.0, 0xbead);

  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_retries = 3;
  cfg.backoff_base_ms = 0.2;
  cfg.backoff_max_ms = 2.0;
  SolveService svc(cfg);
  const auto a = svc.submit(make_req(small2d(), "t"));
  ASSERT_TRUE(a.admitted);
  const SolveResult res = svc.wait(a.ticket);
  EXPECT_EQ(fi.fired(fault::kServiceReject), 2);
  EXPECT_EQ(res.retries, 2);
  EXPECT_TRUE(res.converged) << res.report.summary();
  EXPECT_EQ(res.status, ErrorCode::Generic);
}

TEST_F(ServiceTest, ExhaustedRetriesReportOverloaded) {
  auto& fi = fault::FaultInjector::instance();
  fi.arm(fault::kServiceReject, /*count=*/-1, /*probability=*/1.0, 0xbead);

  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_retries = 2;
  cfg.backoff_base_ms = 0.2;
  cfg.backoff_max_ms = 1.0;
  SolveService svc(cfg);
  const auto a = svc.submit(make_req(small2d(), "t"));
  ASSERT_TRUE(a.admitted);
  const SolveResult res = svc.wait(a.ticket);
  EXPECT_EQ(res.status, ErrorCode::Overloaded);
  EXPECT_EQ(res.retries, 2);
  EXPECT_GT(res.retry_after_ms, 0.0);
}

// ---------------------------------------------------------------------
// Overload degradation ladder (relax, then cap, before shedding).

TEST_F(ServiceTest, QueueFillDegradesBeforeShedding) {
  ServiceConfig cfg = patient_config();
  cfg.queue_capacity = 4;
  cfg.degrade_relax_fill = 0.25;
  cfg.degrade_cap_fill = 0.5;
  cfg.capped_cycles = 20;  // roomy enough to still converge at n=63
  SolveService svc(cfg);

  const auto blocker = svc.submit(blocker_req("t"));
  ASSERT_TRUE(blocker.admitted);
  spin_until_drained(svc);

  // Three queued requests; the worker sees fills 2/4, 1/4, 0/4 as it
  // drains them, walking back up the ladder as pressure eases.
  const auto j1 = svc.submit(make_req(small2d(), "t"));
  const auto j2 = svc.submit(make_req(small2d(), "t"));
  const auto j3 = svc.submit(make_req(small2d(), "t"));
  ASSERT_TRUE(j1.admitted && j2.admitted && j3.admitted);
  ASSERT_TRUE(svc.cancel(blocker.ticket));
  (void)svc.wait(blocker.ticket);

  const SolveResult r1 = svc.wait(j1.ticket);
  const SolveResult r2 = svc.wait(j2.ticket);
  const SolveResult r3 = svc.wait(j3.ticket);
  EXPECT_TRUE(r1.degraded);
  EXPECT_EQ(r1.degradation, "relaxed tol + capped cycles");
  EXPECT_TRUE(r2.degraded);
  EXPECT_EQ(r2.degradation, "relaxed tol");
  EXPECT_FALSE(r3.degraded);
  EXPECT_TRUE(r1.converged && r2.converged && r3.converged);
  EXPECT_EQ(svc.tenant_stats().at("t").degraded, 2);
}

// ---------------------------------------------------------------------
// Observability plane (DESIGN.md §14): request-correlated spans,
// latency histograms, SLO gauges and the scrape endpoint.

TEST_F(ServiceTest, RequestSpansCarryTheTicketThroughTheExecutor) {
#if defined(POLYMG_TRACE_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out (POLYMG_TRACING=OFF)";
#endif
  // One worker: traced sessions are documented single-worker (per-thread
  // rings are single-writer per OMP slot).
  ServiceConfig cfg;
  cfg.workers = 1;
  SolveService svc(cfg);
  obs::TraceSession::start();
  const auto a = svc.submit(make_req(small2d(), "traced", 1e-8,
                                     /*deadline_ms=*/5000.0));
  ASSERT_TRUE(a.admitted);
  (void)svc.wait(a.ticket);
  obs::TraceSession::stop();
  const auto evs = obs::TraceSession::snapshot();

  const auto ticket = static_cast<std::int32_t>(a.ticket);
  int request_spans = 0, queue_waits = 0, exec_with_ticket = 0;
  for (const obs::TraceEvent& e : evs) {
    if (e.kind == obs::EventKind::RequestSpan) {
      ++request_spans;
      EXPECT_EQ(e.req, ticket);
      EXPECT_EQ(e.id, static_cast<std::int32_t>(a.ticket));
      EXPECT_DOUBLE_EQ(e.value, 5000.0);  // deadline rides in value
    }
    if (e.kind == obs::EventKind::RequestQueueWait) {
      ++queue_waits;
      EXPECT_EQ(e.req, ticket);
    }
    if ((e.kind == obs::EventKind::TileExec ||
         e.kind == obs::EventKind::SlabExec ||
         e.kind == obs::EventKind::GroupExec) &&
        e.req == ticket) {
      ++exec_with_ticket;
    }
  }
  EXPECT_EQ(request_spans, 1);
  EXPECT_EQ(queue_waits, 1);
  // The solve's tile/stage spans nest under the request: the ticket
  // reached the executor through GuardPolicy -> GuardedExecutor ->
  // Executor.
  EXPECT_GT(exec_with_ticket, 0);
}

TEST_F(ServiceTest, LatencyHistogramsAndSloGaugesTrackRequests) {
  auto& m = obs::Metrics::instance();
  m.histogram("service.e2e_ns").reset();
  m.histogram("service.queue_ns").reset();
  m.histogram("service.solve_ns").reset();

  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.slo_target = 0.9;  // budget 0.1 — easy to reason about below
  SolveService svc(cfg);
  const int kReqs = 3;
  std::vector<std::uint64_t> tickets;
  for (int i = 0; i < kReqs; ++i) {
    const auto a = svc.submit(make_req(small2d(), "slo-t"));
    ASSERT_TRUE(a.admitted);
    tickets.push_back(a.ticket);
  }
  double max_e2e_ms = 0.0;
  for (const auto t : tickets) {
    const SolveResult r = svc.wait(t);
    EXPECT_TRUE(r.converged);
    EXPECT_GT(r.e2e_ms, 0.0);
    EXPECT_GE(r.e2e_ms, r.queue_ms);
    max_e2e_ms = std::max(max_e2e_ms, r.e2e_ms);
  }

  // Aggregate and per-tenant histograms saw every request; the e2e
  // quantile is consistent with the observed per-request values.
  EXPECT_EQ(m.histogram("service.e2e_ns").count(), kReqs);
  EXPECT_EQ(m.histogram("service.solve_ns").count(), kReqs);
  EXPECT_EQ(m.histogram("service.tenant.slo-t.e2e_ns").count(), kReqs);
  const auto p99_ns = m.histogram("service.e2e_ns").quantile(0.99);
  const auto width_ns =
      m.histogram("service.e2e_ns").quantile_bucket_width(0.99);
  EXPECT_LE(std::abs(static_cast<double>(p99_ns) - max_e2e_ms * 1e6),
            static_cast<double>(width_ns));

  // No deadline misses, no sheds: every SLO gauge reads zero burn.
  EXPECT_EQ(m.gauge("service.tenant.slo-t.slo.deadline_hit_ppm").value(), 0);
  EXPECT_EQ(m.gauge("service.tenant.slo-t.slo.shed_ppm").value(), 0);
  EXPECT_EQ(
      m.gauge("service.tenant.slo-t.slo.error_budget_burn_ppm").value(), 0);
}

TEST_F(ServiceTest, SheddingBurnsTheTenantErrorBudget) {
  // One worker pinned by a blocker, capacity 1: the measured tenant's
  // first submit queues, its second sheds. With slo_target 0.5 (budget
  // 0.5), 1 shed of 2 submitted = bad ratio 0.5 = burn exactly 1e6 ppm.
  auto& m = obs::Metrics::instance();
  ServiceConfig cfg = patient_config();
  cfg.queue_capacity = 1;
  cfg.slo_target = 0.5;
  SolveService svc(cfg);
  const auto blocker = svc.submit(blocker_req("pinner"));
  ASSERT_TRUE(blocker.admitted);
  // Wait until the worker dequeues the blocker, so the next submit
  // occupies the queue slot rather than racing for the worker.
  spin_until_drained(svc);
  const auto q1 = svc.submit(make_req(small2d(), "burn-t"));
  ASSERT_TRUE(q1.admitted);  // fills the queue
  const auto q2 = svc.submit(make_req(small2d(), "burn-t"));
  ASSERT_FALSE(q2.admitted);  // shed
  EXPECT_GT(q2.retry_after_ms, 0.0);

  // The shed updated the gauges immediately, before any completion.
  const auto shed = m.gauge("service.tenant.burn-t.slo.shed_ppm").value();
  const auto burn =
      m.gauge("service.tenant.burn-t.slo.error_budget_burn_ppm").value();
  EXPECT_EQ(shed, 500000);   // 1 of 2 submitted
  EXPECT_EQ(burn, 1000000);  // consuming the budget exactly at target

  ASSERT_TRUE(svc.cancel(blocker.ticket));
  (void)svc.wait(blocker.ticket);
  (void)svc.wait(q1.ticket);
}

TEST_F(ServiceTest, ScrapeEndpointServesServiceSeries) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.metrics_port = 0;  // ephemeral loopback port
  SolveService svc(cfg);
  if (!svc.metrics_running()) {
    GTEST_SKIP() << "cannot bind a loopback listener in this environment";
  }
  ASSERT_GT(svc.metrics_port(), 0);
  const auto a = svc.submit(make_req(small2d(), "scraped"));
  ASSERT_TRUE(a.admitted);
  (void)svc.wait(a.ticket);

  // Scrape while the service is live: the payload carries the latency
  // histogram series and the per-tenant SLO gauges in Prometheus text
  // format.
  const std::string payload =
      obs::ScrapeEndpoint::http_get_local(svc.metrics_port());
  EXPECT_NE(payload.find("# TYPE service_e2e_ns histogram"),
            std::string::npos)
      << payload.substr(0, 300);
  EXPECT_NE(payload.find("service_e2e_ns_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(payload.find(
                "service_tenant_scraped_slo_deadline_hit_ppm"),
            std::string::npos);
  EXPECT_NE(payload.find("service_completed"), std::string::npos);
}

// Per-tenant roll-ups render into a RunReport.
TEST_F(ServiceTest, AttachTenantsRendersRollups) {
  ServiceConfig cfg;
  cfg.workers = 1;
  SolveService svc(cfg);
  const auto a = svc.submit(make_req(small2d(), "acme"));
  ASSERT_TRUE(a.admitted);
  (void)svc.wait(a.ticket);

  obs::RunReport rr;
  svc.attach_tenants(rr);
  ASSERT_EQ(rr.tenant_lines.size(), 1u);
  EXPECT_NE(rr.tenant_lines[0].find("acme"), std::string::npos);
  EXPECT_NE(rr.tenant_lines[0].find("1 admitted"), std::string::npos);
}

}  // namespace
}  // namespace polymg::service
